"""Tests for the RP-DBSCAN baseline (approximated parallel DBSCAN)."""

import numpy as np
import pytest

from repro import detect_outliers
from repro.baselines.rp_dbscan import DisjointSet, RPDBSCAN
from repro.exceptions import ParameterError
from repro.metrics import compare_outlier_sets


class TestDisjointSet:
    def test_initially_singletons(self):
        forest = DisjointSet()
        assert forest.find("a") == "a"
        assert forest.find("b") == "b"

    def test_union_merges(self):
        forest = DisjointSet()
        forest.union("a", "b")
        forest.union("b", "c")
        assert forest.find("a") == forest.find("c")
        assert forest.find("a") != forest.find("d")

    def test_groups(self):
        forest = DisjointSet()
        forest.union(1, 2)
        forest.union(3, 4)
        forest.find(5)
        groups = forest.groups()
        assert sorted(sorted(g) for g in groups.values()) == [
            [1, 2],
            [3, 4],
            [5],
        ]

    def test_idempotent_union(self):
        forest = DisjointSet()
        forest.union("x", "y")
        forest.union("x", "y")
        assert len(forest.groups()) == 1

    def test_len(self):
        forest = DisjointSet()
        forest.union(1, 2)
        assert len(forest) == 2


class TestApproximation:
    def test_superset_of_exact_outliers_up_to_rare_fns(self, clustered_2d):
        exact = detect_outliers(clustered_2d, 0.8, 8)
        approx = RPDBSCAN(0.8, 8, rho=0.05, num_partitions=4).detect(
            clustered_2d
        )
        comparison = compare_outlier_sets(exact.outlier_mask, approx.outlier_mask)
        # The conservative core test only ever adds outliers; the
        # liberal coverage test can only absorb points within rho*eps
        # of a core sub-cell, so FNs stay a tiny fraction.
        assert comparison.n_approx >= comparison.n_exact - comparison.false_negatives
        assert comparison.false_negative_rate <= 0.05

    def test_approx_cores_subset_of_exact_cores(self, clustered_2d):
        exact = detect_outliers(clustered_2d, 0.8, 8)
        approx = RPDBSCAN(0.8, 8, rho=0.05, num_partitions=4).fit(clustered_2d)
        assert not (approx.core_mask & ~exact.core_mask).any()

    def test_smaller_rho_converges_to_exact(self, rng):
        points = np.vstack(
            [rng.normal(0, 0.4, (200, 2)), rng.uniform(-6, 6, (25, 2))]
        )
        exact = detect_outliers(points, 0.6, 8)
        errors = []
        for rho in (0.5, 0.1, 0.01):
            approx = RPDBSCAN(0.6, 8, rho=rho, num_partitions=3).detect(points)
            comparison = compare_outlier_sets(
                exact.outlier_mask, approx.outlier_mask
            )
            errors.append(
                comparison.false_positives + comparison.false_negatives
            )
        assert errors[0] >= errors[-1]
        assert errors[-1] <= max(1, int(0.02 * points.shape[0]))

    def test_partition_count_does_not_change_result(self, clustered_2d):
        masks = []
        for num_partitions in (1, 3, 8):
            approx = RPDBSCAN(
                0.8, 8, rho=0.05, num_partitions=num_partitions, seed=0
            ).detect(clustered_2d)
            masks.append(approx.outlier_mask)
        assert np.array_equal(masks[0], masks[1])
        assert np.array_equal(masks[1], masks[2])


class TestClustering:
    def test_two_separated_clusters_found(self, rng):
        a = rng.normal(0.0, 0.3, size=(100, 2))
        b = rng.normal(10.0, 0.3, size=(100, 2))
        result = RPDBSCAN(1.0, 5, rho=0.05, num_partitions=4).fit(
            np.vstack([a, b])
        )
        labels_a = set(result.labels[:100]) - {-1}
        labels_b = set(result.labels[100:]) - {-1}
        assert labels_a and labels_b and labels_a.isdisjoint(labels_b)

    def test_core_points_always_labelled(self, clustered_2d):
        result = RPDBSCAN(0.8, 8, rho=0.05, num_partitions=4).fit(clustered_2d)
        assert (result.labels[result.core_mask] >= 0).all()

    def test_outliers_are_unlabelled(self, clustered_2d):
        result = RPDBSCAN(0.8, 8, rho=0.05, num_partitions=4).fit(clustered_2d)
        assert np.array_equal(result.outlier_mask, result.labels < 0)

    def test_timings_and_stats(self, clustered_2d):
        result = RPDBSCAN(0.8, 8, num_partitions=3).fit(clustered_2d)
        assert result.timings is not None
        assert set(result.timings.phases) == {
            "partition_dictionary",
            "core_marking",
            "coverage",
            "cluster_merge",
        }
        assert result.stats["num_partitions"] == 3

    def test_empty_input(self):
        result = RPDBSCAN(1.0, 5).fit(np.zeros((0, 2)))
        assert result.n_clusters == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rho": 0.0},
            {"rho": 1.5},
            {"num_partitions": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            RPDBSCAN(1.0, 5, **kwargs)
