"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def clustered_2d(rng: np.random.Generator) -> np.ndarray:
    """Two Gaussian clusters plus uniform scatter (2-D, 330 points)."""
    return np.vstack(
        [
            rng.normal(0.0, 0.4, size=(150, 2)),
            rng.normal(6.0, 0.5, size=(150, 2)),
            rng.uniform(-10.0, 16.0, size=(30, 2)),
        ]
    )


@pytest.fixture
def clustered_3d(rng: np.random.Generator) -> np.ndarray:
    """One Gaussian cluster plus uniform scatter (3-D, 220 points)."""
    return np.vstack(
        [
            rng.normal(0.0, 0.5, size=(200, 3)),
            rng.uniform(-8.0, 8.0, size=(20, 3)),
        ]
    )


@pytest.fixture
def paper_toy_dataset() -> np.ndarray:
    """A small 2-D dataset in the spirit of the paper's Fig. 2 example,
    including the four named example points p1..p4."""
    cluster = np.array(
        [
            [0.2, 0.3],
            [0.5, 0.6],
            [0.7, 0.2],
            [0.3, 0.8],
            [0.8, 0.7],
            [0.6, 0.4],
        ]
    )
    sparse = np.array(
        [
            [1.1, -0.3],  # p1 in the paper: core via neighborhood
            [1.9, -0.9],  # p2: not core
            [0.7, -1.5],  # p3: covered by a core point
            [0.3, -1.8],  # p4: outlier
            [1.4, 0.3],
            [1.2, 0.8],
        ]
    )
    return np.vstack([cluster, sparse])
