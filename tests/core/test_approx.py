"""Tests for the approximate quality tier (``repro.core.approx``).

The tier's contract is one-sided: approximate core points are a subset
of the exact cores, flagged outliers a superset of the exact outliers
(recall 1.0 by construction), and the self-audit recovers the exact
labels from the flagged set alone.  These tests pin each leg of that
contract against the exact engine, plus the validation, determinism,
serving, and observability surfaces.
"""

import numpy as np
import pytest

from repro.core.approx import (
    QUALITY_NAMES,
    QUALITY_PRESETS,
    ApproxEngine,
    normalize_quality,
    normalize_sample_fraction,
    normalize_seed,
    validate_quality_config,
)
from repro.core.dbscout import DBSCOUT
from repro.core.vectorized import VectorizedEngine
from repro.exceptions import ParameterError

EPS = 0.8
MIN_PTS = 8


@pytest.fixture
def blob_points(rng):
    cluster_a = rng.normal(0.0, 0.4, size=(400, 2))
    cluster_b = rng.normal(7.0, 0.5, size=(400, 2))
    scatter = rng.uniform(-12.0, 18.0, size=(40, 2))
    return np.vstack([cluster_a, cluster_b, scatter])


@pytest.fixture
def exact_result(blob_points):
    return VectorizedEngine().detect(blob_points, EPS, MIN_PTS)


class TestValidation:
    def test_quality_names(self):
        assert QUALITY_NAMES == ("exact", "balanced", "fast")
        for name in QUALITY_NAMES:
            assert normalize_quality(name) == name
        assert normalize_quality(None) == "exact"

    @pytest.mark.parametrize("bad", ["turbo", "", 3, True, b"fast"])
    def test_bad_quality_rejected(self, bad):
        with pytest.raises(ParameterError):
            normalize_quality(bad)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.0001, float("nan"), True, "half", None])
    def test_bad_sample_fraction_rejected(self, bad):
        with pytest.raises(ParameterError):
            normalize_sample_fraction(bad)

    @pytest.mark.parametrize("good", [1e-9, 0.2, 1, 1.0, np.float64(0.5)])
    def test_good_sample_fraction(self, good):
        assert 0.0 < normalize_sample_fraction(good) <= 1.0

    @pytest.mark.parametrize("bad", [-1, 0.5, True, "7"])
    def test_bad_seed_rejected(self, bad):
        with pytest.raises(ParameterError):
            normalize_seed(bad)

    def test_seed_none_is_zero(self):
        assert normalize_seed(None) == 0
        assert normalize_seed(np.int64(9)) == 9

    def test_facade_rejects_bad_preset(self):
        with pytest.raises(ParameterError):
            DBSCOUT(eps=1.0, min_pts=5, quality="turbo")

    def test_facade_rejects_exact_with_sample_fraction(self):
        with pytest.raises(ParameterError):
            DBSCOUT(eps=1.0, min_pts=5, quality="exact", sample_fraction=0.5)

    def test_facade_rejects_distributed_approximate(self):
        with pytest.raises(ParameterError):
            DBSCOUT(eps=1.0, min_pts=5, engine="distributed", quality="fast")

    def test_facade_rejects_approx_knobs_on_exact(self):
        with pytest.raises(ParameterError):
            DBSCOUT(eps=1.0, min_pts=5, rp_prefilter=False)

    def test_engine_rejects_exact(self):
        with pytest.raises(ParameterError):
            ApproxEngine(quality="exact")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_projections": 0},
            {"n_projections": True},
            {"rp_margin": 0.0},
            {"rp_margin": -1.0},
            {"rp_prefilter": "yes"},
            {"sample_method": "grid"},
        ],
    )
    def test_engine_knob_validation(self, kwargs):
        with pytest.raises(ParameterError):
            ApproxEngine(quality="balanced", **kwargs)

    def test_validate_quality_config_roundtrip(self):
        config = validate_quality_config(
            {
                "quality": "fast",
                "sample_fraction": 0.2,
                "seed": 3,
                "sample_method": "kcenter",
                "unrelated": "ignored",
            }
        )
        assert config == {
            "quality": "fast",
            "sample_fraction": 0.2,
            "seed": 3,
            "sample_method": "kcenter",
        }

    def test_validate_quality_config_rejects_exact_with_fraction(self):
        with pytest.raises(ParameterError):
            validate_quality_config(
                {"quality": "exact", "sample_fraction": 0.5}
            )

    def test_presets_cover_non_exact_names(self):
        assert set(QUALITY_PRESETS) == {"balanced", "fast"}


class TestOneSidedGuarantee:
    @pytest.mark.parametrize("quality", ["balanced", "fast"])
    def test_outliers_superset_cores_subset(
        self, blob_points, exact_result, quality
    ):
        result = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality=quality, seed=0
        ).fit(blob_points)
        exact_out = exact_result.outlier_mask
        exact_core = exact_result.core_mask
        assert np.all(result.outlier_mask >= exact_out)
        assert np.all(result.core_mask <= exact_core)

    @pytest.mark.parametrize("sample_method", ["uniform", "kcenter"])
    @pytest.mark.parametrize("rp_prefilter", [False, True])
    def test_guarantee_holds_across_knobs(
        self, blob_points, exact_result, sample_method, rp_prefilter
    ):
        result = DBSCOUT(
            eps=EPS,
            min_pts=MIN_PTS,
            quality="fast",
            seed=1,
            sample_method=sample_method,
            rp_prefilter=rp_prefilter,
        ).fit(blob_points)
        assert np.all(result.outlier_mask >= exact_result.outlier_mask)
        assert np.all(result.core_mask <= exact_result.core_mask)

    def test_reported_recall_is_one(self, blob_points):
        result = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="fast", seed=0
        ).fit(blob_points)
        assert result.stats["approx.recall"] == 1.0

    def test_full_sample_reproduces_exact(self, blob_points, exact_result):
        result = DBSCOUT(
            eps=EPS,
            min_pts=MIN_PTS,
            quality="balanced",
            sample_fraction=1.0,
            seed=0,
        ).fit(blob_points)
        assert np.array_equal(
            result.outlier_mask, exact_result.outlier_mask
        )
        assert np.array_equal(result.core_mask, exact_result.core_mask)

    def test_tree_planner_composes(self, rng):
        # The RP prefilter must compose with the grid-tree planner in
        # higher dimensions without breaking the one-sided direction.
        points = np.vstack(
            [
                rng.normal(0.0, 0.5, size=(300, 5)),
                rng.uniform(-10.0, 10.0, size=(25, 5)),
            ]
        )
        exact = VectorizedEngine(cell_planner="tree").detect(
            points, 2.0, 6
        )
        approx = DBSCOUT(
            eps=2.0,
            min_pts=6,
            quality="fast",
            seed=2,
            cell_planner="tree",
        ).fit(points)
        assert np.all(approx.outlier_mask >= exact.outlier_mask)
        assert np.all(approx.core_mask <= exact.core_mask)


class TestAudit:
    def test_audit_mask_matches_exact_engine(self, blob_points, exact_result):
        detector = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="fast", seed=0
        )
        detector.fit(blob_points)
        audit = detector._engine.last_audit_mask_
        assert audit is not None
        assert np.array_equal(audit, exact_result.outlier_mask)

    def test_audit_matches_exact_on_fuzz_seeds(self):
        from repro.qa.generators import generate_dataset

        for seed in range(8):
            dataset = generate_dataset(seed)
            try:
                exact = VectorizedEngine().detect(
                    dataset.points, dataset.eps, dataset.min_pts
                )
            except Exception:
                continue  # datasets the exact engine rejects
            engine = ApproxEngine(quality="fast", seed=seed)
            result = engine.detect(
                dataset.points, dataset.eps, dataset.min_pts
            )
            assert np.all(result.outlier_mask >= exact.outlier_mask), seed
            if dataset.n_points:
                assert np.array_equal(
                    engine.last_audit_mask_, exact.outlier_mask
                ), seed

    def test_reported_precision_matches_direct_computation(
        self, blob_points, exact_result
    ):
        from repro.metrics import precision_score

        result = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="fast", seed=0
        ).fit(blob_points)
        direct = precision_score(
            exact_result.outlier_mask, result.outlier_mask
        )
        assert result.stats["approx.precision"] == pytest.approx(direct)

    def test_audit_off_skips_scores(self, blob_points):
        result = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="fast", seed=0, audit=False
        ).fit(blob_points)
        assert "approx.precision" not in result.stats
        assert "approx.sampled_points" in result.stats


class TestDeterminism:
    def test_same_seed_same_labels(self, blob_points):
        first = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="fast", seed=11
        ).fit(blob_points)
        second = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="fast", seed=11
        ).fit(blob_points)
        assert np.array_equal(first.outlier_mask, second.outlier_mask)
        assert np.array_equal(first.core_mask, second.core_mask)

    def test_seed_recorded_in_run_context(self, blob_points):
        result = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="balanced", seed=23
        ).fit(blob_points)
        assert result.record.context["seed"] == 23
        assert result.record.context["quality"] == "balanced"
        assert result.record.context["sample_fraction"] == 0.5

    def test_stats_families_declared(self, blob_points):
        from repro.obs.names import undeclared

        result = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="balanced", seed=0
        ).fit(blob_points)
        approx_keys = {
            key for key in result.stats if key.startswith("approx.")
        }
        assert {
            "approx.sampled_points",
            "approx.precision",
            "approx.recall",
            "approx.f1",
            "approx.flagged_outliers",
            "approx.exact_outliers",
            "approx.false_outliers",
        } <= approx_keys
        assert undeclared(approx_keys) == []


class TestServing:
    def test_core_model_carries_quality_config(self, blob_points):
        detector = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="fast", seed=5
        )
        detector.fit(blob_points)
        model = detector.core_model_
        assert model.quality == "fast"
        assert model.quality_config == {
            "quality": "fast",
            "sample_fraction": 0.2,
            "seed": 5,
            "sample_method": "uniform",
        }

    def test_exact_core_model_is_marked_exact(self, blob_points):
        detector = DBSCOUT(eps=EPS, min_pts=MIN_PTS)
        detector.fit(blob_points)
        assert detector.core_model_.quality == "exact"

    def test_artifact_roundtrip_keeps_quality(self, blob_points, tmp_path):
        from repro.serve import load_artifact, save_artifact

        detector = DBSCOUT(
            eps=EPS, min_pts=MIN_PTS, quality="balanced", seed=4
        )
        detector.fit(blob_points)
        path = save_artifact(detector.core_model_, tmp_path / "approx.npz")
        loaded = load_artifact(path)
        assert loaded.model.quality == "balanced"
        assert loaded.model.quality_config["seed"] == 4
        assert np.array_equal(
            loaded.model.classify(blob_points),
            detector.core_model_.classify(blob_points),
        )

    def test_load_rejects_invalid_quality_metadata(
        self, blob_points, tmp_path
    ):
        import json

        from repro.serve import load_artifact, save_artifact

        detector = DBSCOUT(eps=EPS, min_pts=MIN_PTS, quality="fast", seed=0)
        detector.fit(blob_points)
        path = save_artifact(detector.core_model_, tmp_path / "a.npz")
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        header = json.loads(bytes(payload["header"]).decode("utf-8"))
        header["metadata"]["quality"] = "turbo"
        payload["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        tampered = tmp_path / "tampered.npz"
        np.savez(tampered, **payload)
        with pytest.raises(ParameterError):
            load_artifact(tampered)

    def test_subsample_is_seeded_superset_labeler(self, blob_points):
        detector = DBSCOUT(eps=EPS, min_pts=MIN_PTS)
        detector.fit(blob_points)
        model = detector.core_model_
        sub = model.subsample(0.3, seed=9)
        again = model.subsample(0.3, seed=9)
        assert np.array_equal(sub.core_points, again.core_points)
        assert sub.n_core_points < model.n_core_points
        assert sub.metadata["serving_sample_fraction"] == 0.3
        # One-sided: the subset model can only flag more outliers.
        assert np.all(
            sub.classify(blob_points) >= model.classify(blob_points)
        )

    def test_subsample_validates_inputs(self, blob_points):
        detector = DBSCOUT(eps=EPS, min_pts=MIN_PTS)
        detector.fit(blob_points)
        with pytest.raises(ParameterError):
            detector.core_model_.subsample(0.0)
        with pytest.raises(ParameterError):
            detector.core_model_.subsample(0.5, seed=-2)


class TestQaIntegration:
    def test_quality_exact_variant_registered(self):
        from repro.qa.runner import VARIANT_NAMES

        assert "vectorized_quality_exact" in VARIANT_NAMES

    def test_quality_exact_variant_matches_oracle(self):
        from repro.qa.runner import DifferentialRunner

        runner = DifferentialRunner(
            variants=("vectorized_quality_exact",), emit_records=False
        )
        for seed in range(6):
            case = runner.run_seed(seed)
            assert case.ok, [str(d) for d in case.divergences]


class TestCli:
    @pytest.fixture
    def points_file(self, tmp_path, rng):
        from repro.datasets.io import save_points

        cluster = rng.normal(0.0, 0.3, size=(200, 2))
        outliers = np.array([[9.0, 9.0], [-8.0, 4.0]])
        path = tmp_path / "points.csv"
        save_points(np.vstack([cluster, outliers]), path)
        return path

    def test_detect_quality_flag(self, points_file, capsys):
        from repro.cli import main

        code = main(
            [
                "detect",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--quality",
                "fast",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out.split()
        # Superset guarantee: the planted outliers are always flagged.
        assert {"200", "201"} <= set(printed)

    def test_detect_rejects_exact_with_fraction(self, points_file, capsys):
        from repro.cli import main

        code = main(
            [
                "detect",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--sample-fraction",
                "0.5",
            ]
        )
        assert code == 1
        assert "sample_fraction" in capsys.readouterr().err

    def test_fit_quality_reaches_artifact(
        self, points_file, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.serve import load_artifact

        path = tmp_path / "model.npz"
        code = main(
            [
                "fit",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--quality",
                "balanced",
                "--seed",
                "6",
                "--save-artifact",
                str(path),
            ]
        )
        assert code == 0
        loaded = load_artifact(path)
        assert loaded.model.quality == "balanced"
        assert loaded.model.quality_config["seed"] == 6
