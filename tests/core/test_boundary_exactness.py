"""Cross-engine boundary semantics: exact-eps, degenerate, domain limits.

The operational exactness contract (module docstring of
``repro.core.reference``) says two points are neighbors iff they share
an epsilon-cell or their float squared distance is ``<= eps**2``.
These tests pin the visible consequences of that contract across every
engine: pairs at distance exactly eps count, same-cell pairs count
even when the float kernel rounds their distance above eps, degenerate
inputs agree everywhere, and out-of-domain coordinates are rejected
uniformly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cellmap import CellMap
from repro.core.classify import CoreModel
from repro.core.distributed import DistributedEngine
from repro.core.grid import MAX_ABS_CELL_COORD, Grid, cell_side_length
from repro.core.incremental import IncrementalDBSCOUT
from repro.core.reference import brute_force_detect
from repro.core.vectorized import VectorizedEngine
from repro.exceptions import DataValidationError


def _engines():
    return [
        ("vectorized_pruned", VectorizedEngine(pruning=True).detect),
        ("vectorized_unpruned", VectorizedEngine(pruning=False).detect),
        (
            "distributed_group",
            DistributedEngine(num_partitions=2, join_strategy="group").detect,
        ),
        (
            "distributed_plain",
            DistributedEngine(num_partitions=2, join_strategy="plain").detect,
        ),
        (
            "distributed_broadcast",
            DistributedEngine(
                num_partitions=2, join_strategy="broadcast"
            ).detect,
        ),
        ("incremental", _incremental_detect),
    ]


def _incremental_detect(points, eps, min_pts):
    detector = IncrementalDBSCOUT(eps, min_pts)
    if points.shape[0]:
        detector.insert(points)
    return detector.detect()


def _assert_all_engines_match_reference(points, eps, min_pts):
    points = np.asarray(points, dtype=np.float64)
    reference = brute_force_detect(points, eps, min_pts)
    for name, detect in _engines():
        result = detect(points, eps, min_pts)
        np.testing.assert_array_equal(
            result.core_mask, reference.core_mask, err_msg=name
        )
        np.testing.assert_array_equal(
            result.outlier_mask, reference.outlier_mask, err_msg=name
        )
    if points.shape[0]:
        model = CoreModel.from_fit(points, reference, eps, min_pts)
        np.testing.assert_array_equal(
            model.classify(points).astype(bool),
            reference.outlier_mask,
            err_msg="classify",
        )
    return reference


class TestExactEpsDistance:
    """Points at distance exactly eps are neighbors (``<= eps``)."""

    @pytest.mark.parametrize("n_dims", [1, 2, 3])
    @pytest.mark.parametrize("eps", [0.5, 0.7, 1.0, 3.0])
    def test_axis_aligned_exact_eps_pair_counts(self, n_dims, eps):
        a = np.zeros(n_dims)
        b = np.zeros(n_dims)
        b[0] = eps
        points = np.stack([a, b, a, b])  # two copies each
        reference = _assert_all_engines_match_reference(points, eps, 3)
        # With min_pts=3 each point needs its duplicate AND the
        # exactly-eps partner pair: everyone core, nobody an outlier.
        assert reference.core_mask.all()
        assert not reference.outlier_mask.any()

    def test_exact_eps_pair_two_cells_apart(self):
        # The shrunk fuzz witness for the stencil bug: sub-ulp jitter
        # puts the endpoints of a float-exactly-eps pair in cells at
        # minimal gap exactly eps, outside the paper-strict stencil.
        points = np.array([[-5e-17], [0.0], [1.4], [5e-17], [0.7]])
        reference = _assert_all_engines_match_reference(points, 0.7, 5)
        assert reference.core_mask.any()

    def test_same_cell_pair_beyond_float_eps_counts(self):
        # Cell-diagonal corners: real distance < eps but the float
        # kernel rounds the squared distance one ulp above eps**2.
        # Lemma 1 (same cell -> neighbors) must win.
        eps = 3.424009075559291
        side = cell_side_length(eps, 3)
        hi = np.nextafter(side, 0.0)
        points = np.array(
            [[0.0, 0.0, 0.0], [hi, hi, hi]] * 2, dtype=np.float64
        )
        sq = float(((points[0] - points[1]) ** 2).sum())
        assert sq > eps * eps  # the float paradox this test pins
        reference = _assert_all_engines_match_reference(points, eps, 4)
        assert reference.core_mask.all()


class TestDegenerateInputs:
    """n = 0, n = 1, n < min_pts, duplicates: identical everywhere."""

    def test_empty_dataset(self):
        reference = _assert_all_engines_match_reference(
            np.zeros((0, 2)), 1.0, 3
        )
        assert reference.n_points == 0
        assert reference.outlier_mask.shape == (0,)

    def test_single_point(self):
        reference = _assert_all_engines_match_reference(
            [[1.0, 2.0]], 1.0, 3
        )
        assert reference.outlier_mask.tolist() == [True]

    def test_fewer_points_than_min_pts(self):
        reference = _assert_all_engines_match_reference(
            [[0.0, 0.0], [0.1, 0.1]], 1.0, 5
        )
        assert reference.outlier_mask.all()

    def test_all_duplicates_are_core(self):
        reference = _assert_all_engines_match_reference(
            np.zeros((7, 3)), 0.5, 4
        )
        assert reference.core_mask.all()

    def test_single_point_at_min_pts_one(self):
        reference = _assert_all_engines_match_reference(
            [[3.0]], 1.0, 1
        )
        assert reference.core_mask.tolist() == [True]


class TestEmptyClassify:
    """classify() on an empty query batch returns an empty array."""

    @pytest.fixture
    def model(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
        reference = brute_force_detect(points, 1.0, 2)
        return CoreModel.from_fit(points, reference, 1.0, 2)

    @pytest.mark.parametrize(
        "empty",
        [np.zeros((0, 2)), np.array([]), []],
        ids=["0x2", "flat", "list"],
    )
    def test_core_model_classify_empty(self, model, empty):
        labels = model.classify(empty)
        assert labels.shape == (0,)
        assert labels.dtype == np.int64

    def test_cell_map_classify_empty(self):
        cell_map = CellMap(2)
        labels = cell_map.classify(np.zeros((0, 2)), {}, 1.0)
        assert labels.shape == (0,)
        assert labels.dtype == np.int64


class TestGridDomainGuard:
    """Out-of-domain coordinates are rejected uniformly, everywhere."""

    POINTS = np.array([[9e18, 0.0], [-9e18, 0.0], [9e18, 1e9]])

    def test_reference_rejects(self):
        with pytest.raises(DataValidationError):
            brute_force_detect(self.POINTS, 0.5, 2)

    @pytest.mark.parametrize(
        "name,detect", _engines(), ids=[name for name, _ in _engines()]
    )
    def test_every_engine_rejects(self, name, detect):
        with pytest.raises(DataValidationError):
            detect(self.POINTS, 0.5, 2)

    def test_quotient_collapse_rejected(self):
        # Two distinct floats whose cell quotients collide: beyond
        # 2**52 cells the grid cannot tell neighbors apart.
        points = np.array([[1e15], [1.0000000000000001e15]])
        with pytest.raises(DataValidationError):
            brute_force_detect(points, 0.1, 2)
        with pytest.raises(DataValidationError):
            VectorizedEngine().detect(points, 0.1, 2)

    def test_limit_scales_with_side(self):
        # The same coordinates are fine when eps makes cells large
        # enough: the guard bounds |x / side|, not |x|.
        side = cell_side_length(0.5, 1)
        in_domain = np.array([[(2.0**45) * side], [0.0]])
        Grid(in_domain, 0.5)  # does not raise
        out_of_domain = np.array([[float(MAX_ABS_CELL_COORD) * side], [0.0]])
        with pytest.raises(DataValidationError):
            Grid(out_of_domain, 0.5)
