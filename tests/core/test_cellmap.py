"""Tests for repro.core.cellmap: dense/core/other classification."""

import pytest

from repro.core.cellmap import CellMap, CellType
from repro.core.neighbors import NeighborStencil
from repro.exceptions import ParameterError


@pytest.fixture
def simple_map() -> CellMap:
    cell_map = CellMap(2)
    cell_map.set_type((0, 0), CellType.DENSE)
    cell_map.set_type((1, 0), CellType.OTHER)
    cell_map.set_type((5, 5), CellType.OTHER)
    return cell_map


class TestCellType:
    def test_dense_is_core(self):
        assert CellType.DENSE.is_core

    def test_core_is_core(self):
        assert CellType.CORE.is_core

    def test_other_is_not_core(self):
        assert not CellType.OTHER.is_core


class TestFromCounts:
    def test_thresholding(self):
        cell_map = CellMap.from_counts({(0, 0): 10, (1, 1): 3}, min_pts=5)
        assert cell_map.cell_type((0, 0)) is CellType.DENSE
        assert cell_map.cell_type((1, 1)) is CellType.OTHER

    def test_exact_threshold_is_dense(self):
        cell_map = CellMap.from_counts({(0, 0): 5}, min_pts=5)
        assert cell_map.cell_type((0, 0)) is CellType.DENSE

    def test_empty_counts_rejected(self):
        with pytest.raises(ParameterError):
            CellMap.from_counts({}, min_pts=5)

    def test_invalid_min_pts(self):
        with pytest.raises(ParameterError):
            CellMap.from_counts({(0, 0): 1}, min_pts=0)

    def test_infers_dimensionality(self):
        cell_map = CellMap.from_counts({(0, 0, 0): 1}, min_pts=1)
        assert cell_map.n_dims == 3


class TestQueries:
    def test_unknown_cell_is_none(self, simple_map):
        assert simple_map.cell_type((9, 9)) is None

    def test_contains(self, simple_map):
        assert (0, 0) in simple_map
        assert (9, 9) not in simple_map

    def test_len(self, simple_map):
        assert len(simple_map) == 3

    def test_wrong_dimensionality_rejected(self, simple_map):
        with pytest.raises(ParameterError):
            simple_map.set_type((0, 0, 0), CellType.OTHER)

    def test_numpy_integers_are_normalized(self, simple_map):
        import numpy as np

        assert simple_map.cell_type((np.int64(0), np.int64(0))) is CellType.DENSE

    def test_cells_of_type(self, simple_map):
        assert set(simple_map.cells_of_type(CellType.DENSE)) == {(0, 0)}
        assert set(simple_map.cells_of_type(CellType.OTHER)) == {(1, 0), (5, 5)}


class TestMarkCore:
    def test_upgrades_other(self, simple_map):
        simple_map.mark_core((1, 0))
        assert simple_map.cell_type((1, 0)) is CellType.CORE

    def test_dense_stays_dense(self, simple_map):
        simple_map.mark_core((0, 0))
        assert simple_map.cell_type((0, 0)) is CellType.DENSE

    def test_is_core_cell(self, simple_map):
        simple_map.mark_core((1, 0))
        assert simple_map.is_core_cell((0, 0))  # dense
        assert simple_map.is_core_cell((1, 0))  # marked
        assert not simple_map.is_core_cell((5, 5))
        assert not simple_map.is_core_cell((9, 9))  # empty


class TestNeighbors:
    def test_neighbors_only_non_empty(self, simple_map):
        neighbors = simple_map.neighbors((0, 0))
        assert set(neighbors) == {(0, 0), (1, 0)}  # (5,5) is too far

    def test_core_neighbors(self, simple_map):
        assert simple_map.core_neighbors((1, 0)) == [(0, 0)]
        simple_map.mark_core((1, 0))
        assert set(simple_map.core_neighbors((0, 0))) == {(0, 0), (1, 0)}

    def test_isolated_cell_neighbors_itself_only(self, simple_map):
        assert simple_map.neighbors((5, 5)) == [(5, 5)]

    def test_core_neighbors_empty_for_isolated_other(self, simple_map):
        assert simple_map.core_neighbors((5, 5)) == []

    def test_shared_stencil(self):
        stencil = NeighborStencil(2)
        cell_map = CellMap(2, stencil=stencil)
        assert cell_map.stencil is stencil

    def test_repr(self, simple_map):
        simple_map.mark_core((1, 0))
        text = repr(simple_map)
        assert "dense=1" in text and "core=1" in text
