"""Tests for the grid tree (repro.core.celltree).

The tree is a pure pruning layer over non-empty cells: its adjacency
must equal the stencil planner's as a *set* per source cell (row order
may differ; neighbor counts are sums so labels are invariant), and on
sparse high-dimensional grids it must examine far fewer cell pairs.
"""

import numpy as np
import pytest

from repro.core.celltree import CellTree, build_tree_adjacency
from repro.core.neighbors import NeighborStencil
from repro.core.vectorized import (
    TREE_PLANNER_MIN_DIMS,
    VectorizedEngine,
    build_cell_adjacency,
    normalize_cell_planner,
)
from repro.exceptions import ParameterError


def _random_cells(rng, n_cells, n_dims, span):
    cells = rng.integers(-span, span, size=(n_cells, n_dims))
    return np.unique(cells, axis=0)


def _rows(targets, starts, i):
    return sorted(targets[starts[i] : starts[i + 1]].tolist())


class TestPlannerValidation:
    def test_names(self):
        for name in ("auto", "stencil", "tree"):
            assert normalize_cell_planner(name) == name

    def test_none_is_auto(self):
        assert normalize_cell_planner(None) == "auto"

    @pytest.mark.parametrize("bad", ["kd", 1, True])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ParameterError, match="cell_planner"):
            normalize_cell_planner(bad)


class TestAdjacencySetEquality:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("n_dims", [1, 2, 3, 4, 6])
    def test_matches_stencil(self, seed, n_dims):
        rng = np.random.default_rng(seed)
        cells = _random_cells(rng, 80, n_dims, span=4)
        stencil = NeighborStencil(n_dims)
        s_targets, s_starts = build_cell_adjacency(cells, stencil)
        t_targets, t_starts = build_tree_adjacency(cells)
        np.testing.assert_array_equal(s_starts, t_starts)
        for i in range(cells.shape[0]):
            assert _rows(s_targets, s_starts, i) == _rows(
                t_targets, t_starts, i
            )

    def test_empty_grid(self):
        cells = np.zeros((0, 3), dtype=np.int64)
        targets, starts = build_tree_adjacency(cells)
        assert targets.size == 0
        assert starts.tolist() == [0]

    def test_single_cell_is_own_neighbor(self):
        cells = np.array([[5, -3]], dtype=np.int64)
        targets, starts = build_tree_adjacency(cells)
        assert targets.tolist() == [0]
        assert starts.tolist() == [0, 1]

    @pytest.mark.parametrize("leaf_size", [1, 2, 8, 64])
    def test_leaf_size_invariance(self, leaf_size):
        rng = np.random.default_rng(3)
        cells = _random_cells(rng, 60, 3, span=5)
        baseline_t, baseline_s = build_tree_adjacency(cells)
        targets, starts = build_tree_adjacency(cells, leaf_size=leaf_size)
        np.testing.assert_array_equal(baseline_s, starts)
        for i in range(cells.shape[0]):
            assert _rows(baseline_t, baseline_s, i) == _rows(
                targets, starts, i
            )


class TestPruningCounters:
    def test_tree_examines_fewer_pairs_in_high_dims(self):
        # Sparse 5-d grid: the stencil enumerates k_d offsets per cell
        # while the tree prunes empty subtrees by exact integer
        # min-gap arithmetic.
        rng = np.random.default_rng(11)
        cells = _random_cells(rng, 400, 5, span=12)
        stencil = NeighborStencil(5)
        stencil_pairs = cells.shape[0] * stencil.k_d
        counters = {}
        build_tree_adjacency(cells, counters)
        tree_pairs = counters["planner.cell_pairs_examined"]
        assert counters["tree.subtrees_pruned"] > 0
        assert counters["tree.nodes"] > 1
        assert tree_pairs < stencil_pairs / 4

    def test_engine_counters_and_context(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0.0, 30.0, size=(500, 4))
        tree = VectorizedEngine(cell_planner="tree").detect(points, 0.7, 3)
        stencil = VectorizedEngine(cell_planner="stencil").detect(
            points, 0.7, 3
        )
        assert tree.record.context["cell_planner"] == "tree"
        assert stencil.record.context["cell_planner"] == "stencil"
        assert (
            tree.stats["planner.cell_pairs_examined"]
            < stencil.stats["planner.cell_pairs_examined"]
        )
        np.testing.assert_array_equal(tree.core_mask, stencil.core_mask)
        np.testing.assert_array_equal(
            tree.outlier_mask, stencil.outlier_mask
        )

    def test_auto_planner_switches_on_dimensionality(self):
        low = VectorizedEngine()._resolve_planner(TREE_PLANNER_MIN_DIMS - 1)
        high = VectorizedEngine()._resolve_planner(TREE_PLANNER_MIN_DIMS)
        assert low == "stencil"
        assert high == "tree"


class TestCellTreeStructure:
    def test_query_subset(self):
        # Query a subset of cells against the full tree: each row must
        # equal the stencil row for that source cell.
        rng = np.random.default_rng(8)
        cells = _random_cells(rng, 50, 3, span=4)
        stencil = NeighborStencil(3)
        s_targets, s_starts = build_cell_adjacency(cells, stencil)
        tree = CellTree(cells)
        pick = np.array([0, 7, 31], dtype=np.int64)
        targets, starts = tree.query_adjacency(cells[pick])
        for row, src in enumerate(pick):
            got = sorted(targets[starts[row] : starts[row + 1]].tolist())
            assert got == _rows(s_targets, s_starts, int(src))
