"""Exact out-of-sample classification: ``classify`` vs ``fit``.

The serving contract is bit-consistency: ``classify(X_train)`` must
reproduce the training labels of ``fit(X_train)`` exactly — not
approximately — for both engines, across parameter and dimension
grids.  Out-of-sample labels must match the paper's Definition 3
(outlier iff strictly farther than eps from every core point) checked
by brute force.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBSCOUT, CoreModel, classify
from repro.core.cellmap import CellMap
from repro.exceptions import DataValidationError, NotFittedError


def _dataset(rng: np.random.Generator, n_dims: int) -> np.ndarray:
    return np.vstack(
        [
            rng.normal(0.0, 0.4, size=(180, n_dims)),
            rng.normal(5.0, 0.6, size=(120, n_dims)),
            rng.uniform(-10.0, 14.0, size=(40, n_dims)),
        ]
    )


def _brute_force_labels(
    queries: np.ndarray, core_points: np.ndarray, eps: float
) -> np.ndarray:
    """Definition 3 by brute force: outlier iff > eps from every core."""
    labels = np.ones(queries.shape[0], dtype=np.int64)
    if core_points.size == 0:
        return labels
    for i, q in enumerate(queries):
        sq = ((core_points - q) ** 2).sum(axis=1)
        if (sq <= eps * eps).any():
            labels[i] = 0
    return labels


@pytest.mark.parametrize("engine", ["vectorized", "distributed"])
@pytest.mark.parametrize("n_dims", [1, 2, 3])
@pytest.mark.parametrize(
    "eps,min_pts", [(0.3, 3), (0.8, 10), (2.0, 25)]
)
def test_classify_reproduces_fit_labels_exactly(
    rng, engine, n_dims, eps, min_pts
):
    points = _dataset(rng, n_dims)
    detector = DBSCOUT(eps=eps, min_pts=min_pts, engine=engine)
    result = detector.fit(points)
    labels = detector.classify(points)
    assert labels.dtype == np.int64
    np.testing.assert_array_equal(labels, result.labels())


@pytest.mark.parametrize("engine", ["vectorized", "distributed"])
def test_classify_out_of_sample_matches_definition_3(rng, engine):
    points = _dataset(rng, 2)
    queries = np.vstack(
        [
            rng.normal(0.0, 0.5, size=(60, 2)),  # around cluster 1
            rng.uniform(-12.0, 16.0, size=(60, 2)),  # scatter
            points[:10],  # exact training points
        ]
    )
    detector = DBSCOUT(eps=0.8, min_pts=10, engine=engine)
    result = detector.fit(points)
    model = detector.core_model_
    expected = _brute_force_labels(
        queries, points[result.core_mask], eps=0.8
    )
    np.testing.assert_array_equal(model.classify(queries), expected)
    np.testing.assert_array_equal(classify(model, queries), expected)
    np.testing.assert_array_equal(
        model.classify_mask(queries), expected.astype(bool)
    )


def test_core_model_from_fit_round_trip_fields(rng):
    points = _dataset(rng, 2)
    detector = DBSCOUT(eps=0.8, min_pts=10)
    result = detector.fit(points)
    model = detector.core_model_
    assert isinstance(model, CoreModel)
    assert model.eps == 0.8 and model.min_pts == 10
    assert model.n_dims == 2
    assert model.n_train == points.shape[0]
    assert model.n_core_points == result.n_core_points
    assert model.core_starts[0] == 0
    assert model.core_starts[-1] == model.n_core_points
    assert model.nbytes() > 0
    # the same object is cached across accesses
    assert detector.core_model_ is model


def test_classify_requires_fit_first():
    detector = DBSCOUT(eps=0.5, min_pts=5)
    with pytest.raises(NotFittedError):
        detector.classify(np.zeros((3, 2)))
    with pytest.raises(NotFittedError):
        detector.core_model_


def test_classify_rejects_dimension_mismatch(rng):
    points = _dataset(rng, 2)
    detector = DBSCOUT(eps=0.8, min_pts=10)
    detector.fit(points)
    with pytest.raises(DataValidationError):
        detector.classify(np.zeros((4, 3)))


def test_classify_with_no_core_points_labels_everything_outlier(rng):
    points = rng.uniform(-100.0, 100.0, size=(40, 2))
    detector = DBSCOUT(eps=0.01, min_pts=10)
    result = detector.fit(points)
    assert result.n_core_points == 0
    labels = detector.classify(points)
    np.testing.assert_array_equal(labels, np.ones(40, dtype=np.int64))


def test_classify_counters_report_work(rng):
    points = _dataset(rng, 2)
    detector = DBSCOUT(eps=0.8, min_pts=10)
    detector.fit(points)
    counters: dict[str, int] = {}
    detector.core_model_.classify(points, counters=counters)
    assert counters["cells_settled_core"] > 0
    assert counters["distance_computations"] >= 0


def test_cellmap_classify_matches_distributed_fit(rng):
    points = _dataset(rng, 2)
    detector = DBSCOUT(eps=0.8, min_pts=10, engine="distributed")
    result = detector.fit(points)
    model = detector.core_model_
    cellmap = CellMap(n_dims=2)
    for cell in model.core_cells:
        cellmap.mark_core(tuple(cell))
    core_by_cell = {
        tuple(cell): model.core_points[
            model.core_starts[i] : model.core_starts[i + 1]
        ]
        for i, cell in enumerate(model.core_cells)
    }
    labels = cellmap.classify(points, core_by_cell, eps=0.8)
    np.testing.assert_array_equal(labels, result.labels())


def test_classify_single_and_empty_query(rng):
    points = _dataset(rng, 2)
    detector = DBSCOUT(eps=0.8, min_pts=10)
    detector.fit(points)
    single = detector.classify(points[:1])
    assert single.shape == (1,)
    empty = detector.classify(np.empty((0, 2)))
    assert empty.shape == (0,) and empty.dtype == np.int64
