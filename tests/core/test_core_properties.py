"""Property-based tests (hypothesis) for the DBSCOUT core.

These check the central exactness claim — both engines agree with the
brute-force transcription of Definitions 2/3 on arbitrary inputs — and
the geometric invariants behind Lemmas 1 and 2.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distributed import DistributedEngine
from repro.core.grid import Grid
from repro.core.reference import brute_force_detect
from repro.core.vectorized import detect as vectorized_detect

# Coordinates live on the dyadic lattice k/8 with |k| <= 400, and eps is
# k/8 with 1 <= k <= 160.  All squared distances and eps**2 are then
# exactly representable (multiples of 1/64 far below 2**53), so every
# "distance <= eps" comparison is exact: engine-vs-reference parity can
# be asserted bit-for-bit with no float-boundary flakiness, while ties
# at exactly eps (which hypothesis loves to build) are still exercised.
finite_coord = st.integers(min_value=-400, max_value=400).map(
    lambda k: k / 8.0
)


def point_arrays(max_points: int = 60, dims: tuple[int, ...] = (1, 2, 3)):
    return st.integers(min_value=1, max_value=max_points).flatmap(
        lambda n: st.sampled_from(dims).flatmap(
            lambda d: arrays(np.float64, (n, d), elements=finite_coord)
        )
    )


params = st.tuples(
    st.integers(min_value=1, max_value=160).map(lambda k: k / 8.0),
    st.integers(min_value=1, max_value=8),
)


@settings(max_examples=60, deadline=None)
@given(points=point_arrays(), eps_minpts=params)
def test_vectorized_matches_brute_force(points, eps_minpts):
    eps, min_pts = eps_minpts
    expected = brute_force_detect(points, eps, min_pts)
    actual = vectorized_detect(points, eps, min_pts)
    assert np.array_equal(actual.core_mask, expected.core_mask)
    assert np.array_equal(actual.outlier_mask, expected.outlier_mask)


@settings(max_examples=20, deadline=None)
@given(
    points=point_arrays(max_points=30, dims=(2,)),
    eps_minpts=params,
    num_partitions=st.integers(min_value=1, max_value=5),
)
def test_distributed_matches_brute_force(points, eps_minpts, num_partitions):
    eps, min_pts = eps_minpts
    expected = brute_force_detect(points, eps, min_pts)
    engine = DistributedEngine(num_partitions=num_partitions)
    actual = engine.detect(points, eps, min_pts)
    assert np.array_equal(actual.core_mask, expected.core_mask)
    assert np.array_equal(actual.outlier_mask, expected.outlier_mask)


@settings(max_examples=60, deadline=None)
@given(points=point_arrays(), eps_minpts=params)
def test_core_points_never_outliers(points, eps_minpts):
    eps, min_pts = eps_minpts
    result = vectorized_detect(points, eps, min_pts)
    assert not (result.core_mask & result.outlier_mask).any()


@settings(max_examples=60, deadline=None)
@given(points=point_arrays(), eps_minpts=params)
def test_lemma1_dense_cells_all_core(points, eps_minpts):
    eps, min_pts = eps_minpts
    result = vectorized_detect(points, eps, min_pts)
    grid = Grid(points, eps)
    for cell_index in np.flatnonzero(grid.counts >= min_pts):
        assert result.core_mask[grid.cell_members(cell_index)].all()


@settings(max_examples=60, deadline=None)
@given(points=point_arrays(), eps_minpts=params)
def test_lemma2_core_cells_have_no_outliers(points, eps_minpts):
    eps, min_pts = eps_minpts
    result = vectorized_detect(points, eps, min_pts)
    grid = Grid(points, eps)
    for cell_index in range(grid.n_cells):
        members = grid.cell_members(cell_index)
        if result.core_mask[members].any():
            assert not result.outlier_mask[members].any()


@settings(max_examples=40, deadline=None)
@given(points=point_arrays(max_points=40), eps_minpts=params)
def test_grid_partition_complete_and_disjoint(points, eps_minpts):
    eps, _ = eps_minpts
    grid = Grid(points, eps)
    seen = np.zeros(grid.n_points, dtype=int)
    for cell_index in range(grid.n_cells):
        seen[grid.cell_members(cell_index)] += 1
    assert (seen == 1).all()
    assert grid.counts.sum() == grid.n_points


@settings(max_examples=40, deadline=None)
@given(
    points=point_arrays(max_points=40, dims=(2,)),
    eps_minpts=params,
    shift=st.integers(min_value=-4096, max_value=4096).map(lambda k: k / 4.0),
)
def test_translation_invariance(points, eps_minpts, shift):
    # Outlier decisions depend only on pairwise distances; translating
    # the whole dataset (which changes all cell coordinates) must not
    # change the result.
    eps, min_pts = eps_minpts
    base = vectorized_detect(points, eps, min_pts)
    moved = vectorized_detect(points + shift, eps, min_pts)
    assert np.array_equal(base.outlier_mask, moved.outlier_mask)


@settings(max_examples=40, deadline=None)
@given(points=point_arrays(max_points=40), eps_minpts=params)
def test_permutation_equivariance(points, eps_minpts):
    eps, min_pts = eps_minpts
    rng = np.random.default_rng(0)
    order = rng.permutation(points.shape[0])
    base = vectorized_detect(points, eps, min_pts)
    shuffled = vectorized_detect(points[order], eps, min_pts)
    assert np.array_equal(base.outlier_mask[order], shuffled.outlier_mask)
    assert np.array_equal(base.core_mask[order], shuffled.core_mask)
