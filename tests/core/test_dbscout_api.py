"""Tests for the DBSCOUT public API facade."""

import numpy as np
import pytest

from repro import DBSCOUT, detect_outliers
from repro.exceptions import NotFittedError, ParameterError
from repro.types import DetectionResult


class TestConstruction:
    def test_defaults_to_vectorized(self):
        detector = DBSCOUT(eps=1.0, min_pts=5)
        assert detector.engine_name == "vectorized"

    def test_distributed_options_forwarded(self):
        detector = DBSCOUT(
            eps=1.0,
            min_pts=5,
            engine="distributed",
            num_partitions=3,
            join_strategy="plain",
        )
        assert detector._engine.num_partitions == 3
        assert detector._engine.join_strategy == "plain"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ParameterError):
            DBSCOUT(eps=1.0, min_pts=5, engine="quantum")

    def test_vectorized_rejects_engine_options(self):
        with pytest.raises(ParameterError):
            DBSCOUT(eps=1.0, min_pts=5, num_partitions=4)

    @pytest.mark.parametrize(
        "eps,min_pts", [(-1.0, 5), (0.0, 5), (1.0, 0), (1.0, -3), (1.0, 1.5)]
    )
    def test_invalid_parameters(self, eps, min_pts):
        with pytest.raises(ParameterError):
            DBSCOUT(eps=eps, min_pts=min_pts)

    def test_repr(self):
        assert "eps=1.0" in repr(DBSCOUT(eps=1.0, min_pts=5))

    def test_vectorized_accepts_n_jobs(self):
        detector = DBSCOUT(eps=1.0, min_pts=5, n_jobs=2)
        assert detector._engine.n_jobs == 2

    def test_n_jobs_none_means_serial(self):
        assert DBSCOUT(eps=1.0, min_pts=5, n_jobs=None)._engine.n_jobs == 1

    @pytest.mark.parametrize("bad", [0, 1.5, "x", True])
    def test_invalid_n_jobs_rejected(self, bad):
        with pytest.raises(ParameterError):
            DBSCOUT(eps=1.0, min_pts=5, n_jobs=bad)

    def test_unknown_vectorized_options_listed_sorted(self):
        with pytest.raises(ParameterError) as excinfo:
            DBSCOUT(eps=1.0, min_pts=5, zeta=1, alpha=2)
        assert "alpha, zeta" in str(excinfo.value)

    def test_n_jobs_reported_in_stats(self, clustered_2d):
        result = DBSCOUT(eps=0.5, min_pts=10, n_jobs=2).fit(clustered_2d)
        assert result.stats["n_jobs"] == 2


class TestFit:
    def test_fit_returns_result(self, clustered_2d):
        result = DBSCOUT(eps=0.8, min_pts=8).fit(clustered_2d)
        assert isinstance(result, DetectionResult)
        assert result.n_points == clustered_2d.shape[0]

    def test_result_property_after_fit(self, clustered_2d):
        detector = DBSCOUT(eps=0.8, min_pts=8)
        result = detector.fit(clustered_2d)
        assert detector.result_ is result

    def test_result_property_before_fit(self):
        with pytest.raises(NotFittedError):
            DBSCOUT(eps=0.8, min_pts=8).result_

    def test_fit_predict_labels(self, clustered_2d):
        labels = DBSCOUT(eps=0.8, min_pts=8).fit_predict(clustered_2d)
        assert labels.dtype == np.int64
        assert set(np.unique(labels)) <= {0, 1}

    def test_engines_agree(self, clustered_2d):
        vec = DBSCOUT(eps=0.8, min_pts=8).fit(clustered_2d)
        dist = DBSCOUT(
            eps=0.8, min_pts=8, engine="distributed", num_partitions=4
        ).fit(clustered_2d)
        assert np.array_equal(vec.outlier_mask, dist.outlier_mask)

    def test_functional_form(self, clustered_2d):
        result = detect_outliers(clustered_2d, 0.8, 8)
        reference = DBSCOUT(eps=0.8, min_pts=8).fit(clustered_2d)
        assert np.array_equal(result.outlier_mask, reference.outlier_mask)

    def test_refit_replaces_result(self, clustered_2d):
        detector = DBSCOUT(eps=0.8, min_pts=8)
        first = detector.fit(clustered_2d)
        second = detector.fit(clustered_2d[:100])
        assert detector.result_ is second
        assert detector.result_ is not first


class TestDetectionResult:
    def test_outlier_indices_sorted(self, clustered_2d):
        result = detect_outliers(clustered_2d, 0.8, 8)
        indices = result.outlier_indices
        assert (np.diff(indices) > 0).all()
        assert result.outlier_mask[indices].all()

    def test_counts_consistent(self, clustered_2d):
        result = detect_outliers(clustered_2d, 0.8, 8)
        assert result.n_outliers == result.outlier_mask.sum()
        assert result.n_core_points == result.core_mask.sum()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DetectionResult(n_points=5, outlier_mask=np.zeros(4, dtype=bool))

    def test_core_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DetectionResult(
                n_points=3,
                outlier_mask=np.zeros(3, dtype=bool),
                core_mask=np.zeros(2, dtype=bool),
            )

    def test_labels_are_int(self, clustered_2d):
        result = detect_outliers(clustered_2d, 0.8, 8)
        labels = result.labels()
        assert labels.dtype == np.int64
        assert (labels == result.outlier_mask.astype(int)).all()

    def test_no_core_mask_counts_zero(self):
        result = DetectionResult(n_points=2, outlier_mask=np.zeros(2, bool))
        assert result.n_core_points == 0
