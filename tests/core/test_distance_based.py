"""Tests for the Knorr-Ng distance-based detector extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distance_based import DistanceBasedDetector
from repro.exceptions import ParameterError


def brute_force_db_outliers(
    points: np.ndarray, radius: float, fraction: float
) -> np.ndarray:
    """Direct transcription of the DB(fraction, radius) definition."""
    n = points.shape[0]
    diffs = points[:, None, :] - points[None, :, :]
    dists = np.sqrt((diffs**2).sum(axis=2))
    within = (dists <= radius).sum(axis=1)  # self included
    threshold = int(np.floor((1.0 - fraction) * n)) + 1
    return within < threshold


class TestAgainstBruteForce:
    @pytest.mark.parametrize("fraction", [0.9, 0.95, 0.99])
    def test_clustered_data(self, clustered_2d, fraction):
        detector = DistanceBasedDetector(radius=1.5, fraction=fraction)
        result = detector.detect(clustered_2d)
        expected = brute_force_db_outliers(clustered_2d, 1.5, fraction)
        assert np.array_equal(result.outlier_mask, expected)

    def test_3d(self, clustered_3d):
        detector = DistanceBasedDetector(radius=2.0, fraction=0.95)
        result = detector.detect(clustered_3d)
        expected = brute_force_db_outliers(clustered_3d, 2.0, 0.95)
        assert np.array_equal(result.outlier_mask, expected)

    def test_finds_isolated_point(self, rng):
        cluster = rng.normal(0.0, 0.3, size=(200, 2))
        points = np.vstack([cluster, [[50.0, 50.0]]])
        result = DistanceBasedDetector(radius=5.0, fraction=0.95).detect(
            points
        )
        assert result.outlier_mask[-1]
        assert not result.outlier_mask[:-1].any()


class TestPruning:
    def test_dense_cells_skip_counting(self):
        points = np.tile([[1.0, 1.0]], (100, 1))
        result = DistanceBasedDetector(radius=1.0, fraction=0.9).detect(points)
        assert result.stats["cells_counted"] == 0
        assert not result.outlier_mask.any()

    def test_isolated_cells_skip_counting(self, rng):
        points = rng.uniform(0.0, 1e8, size=(500, 2))
        result = DistanceBasedDetector(radius=1.0, fraction=0.9).detect(points)
        assert result.stats["cells_counted"] == 0
        assert result.outlier_mask.all()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"radius": 0.0, "fraction": 0.9},
            {"radius": -1.0, "fraction": 0.9},
            {"radius": float("nan"), "fraction": 0.9},
            {"radius": 1.0, "fraction": 0.0},
            {"radius": 1.0, "fraction": 1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            DistanceBasedDetector(**kwargs)

    def test_threshold(self):
        detector = DistanceBasedDetector(radius=1.0, fraction=0.95)
        assert detector.threshold(100) == 6  # floor(5) + 1
        assert detector.threshold(10) == 1

    def test_empty(self):
        result = DistanceBasedDetector(1.0, 0.9).detect(np.zeros((0, 2)))
        assert result.n_points == 0


coords = st.integers(min_value=-200, max_value=200).map(lambda k: k / 8.0)


@settings(max_examples=50, deadline=None)
@given(
    points=st.integers(min_value=1, max_value=50).flatmap(
        lambda n: arrays(np.float64, (n, 2), elements=coords)
    ),
    radius_k=st.integers(min_value=1, max_value=120),
    fraction=st.sampled_from([0.5, 0.8, 0.9, 0.95, 0.99]),
)
def test_matches_brute_force_property(points, radius_k, fraction):
    radius = radius_k / 8.0
    detector = DistanceBasedDetector(radius=radius, fraction=fraction)
    result = detector.detect(points)
    expected = brute_force_db_outliers(points, radius, fraction)
    assert np.array_equal(result.outlier_mask, expected)
