"""Tests for the distributed DBSCOUT engine (Algorithms 1-5 on SparkLite)."""

import numpy as np
import pytest

from repro.core.distributed import JOIN_STRATEGIES, DistributedEngine
from repro.core.reference import brute_force_detect
from repro.core.vectorized import detect as vectorized_detect
from repro.exceptions import ParameterError
from repro.sparklite import Context


class TestParity:
    @pytest.mark.parametrize("strategy", JOIN_STRATEGIES)
    def test_matches_brute_force_2d(self, clustered_2d, strategy):
        engine = DistributedEngine(num_partitions=4, join_strategy=strategy)
        expected = brute_force_detect(clustered_2d, 0.8, 8)
        actual = engine.detect(clustered_2d, 0.8, 8)
        assert np.array_equal(actual.outlier_mask, expected.outlier_mask)
        assert np.array_equal(actual.core_mask, expected.core_mask)

    @pytest.mark.parametrize("strategy", JOIN_STRATEGIES)
    def test_matches_vectorized_3d(self, clustered_3d, strategy):
        engine = DistributedEngine(num_partitions=3, join_strategy=strategy)
        expected = vectorized_detect(clustered_3d, 1.0, 10)
        actual = engine.detect(clustered_3d, 1.0, 10)
        assert np.array_equal(actual.outlier_mask, expected.outlier_mask)
        assert np.array_equal(actual.core_mask, expected.core_mask)

    @pytest.mark.parametrize("num_partitions", [1, 2, 7, 16])
    def test_partition_count_does_not_change_result(
        self, clustered_2d, num_partitions
    ):
        engine = DistributedEngine(num_partitions=num_partitions)
        expected = vectorized_detect(clustered_2d, 0.6, 6)
        actual = engine.detect(clustered_2d, 0.6, 6)
        assert np.array_equal(actual.outlier_mask, expected.outlier_mask)

    def test_threaded_executors_same_result(self, clustered_2d):
        sequential = DistributedEngine(num_partitions=4, max_workers=1)
        threaded = DistributedEngine(num_partitions=4, max_workers=4)
        a = sequential.detect(clustered_2d, 0.8, 8)
        b = threaded.detect(clustered_2d, 0.8, 8)
        assert np.array_equal(a.outlier_mask, b.outlier_mask)
        assert np.array_equal(a.core_mask, b.core_mask)


class TestPaperExample:
    """The worked example of Section III (Figs. 4-8), eps=sqrt(2), minPts=5."""

    def test_p1_is_core_p2_is_not(self, paper_toy_dataset):
        import math

        engine = DistributedEngine(num_partitions=2)
        result = engine.detect(paper_toy_dataset, math.sqrt(2.0), 5)
        reference = brute_force_detect(paper_toy_dataset, math.sqrt(2.0), 5)
        assert np.array_equal(result.core_mask, reference.core_mask)
        assert np.array_equal(result.outlier_mask, reference.outlier_mask)


class TestConfiguration:
    def test_invalid_strategy(self):
        with pytest.raises(ParameterError):
            DistributedEngine(join_strategy="hash")

    def test_invalid_partitions(self):
        with pytest.raises(ParameterError):
            DistributedEngine(num_partitions=0)

    def test_external_context_metrics_shared(self, clustered_2d):
        context = Context(default_parallelism=4)
        engine = DistributedEngine(num_partitions=4, context=context)
        engine.detect(clustered_2d, 0.8, 8)
        assert context.metrics.shuffles > 0
        assert context.metrics.records_shuffled > 0
        assert context.metrics.broadcasts >= 2  # two cell-map broadcasts

    def test_stats_reported(self, clustered_2d):
        engine = DistributedEngine(num_partitions=4, join_strategy="group")
        result = engine.detect(clustered_2d, 0.8, 8)
        assert result.stats["engine"] == "distributed"
        assert result.stats["join_strategy"] == "group"
        assert result.stats["num_partitions"] == 4
        assert result.stats["n_cells"] > 0
        assert result.timings is not None
        assert set(result.timings.phases) == {
            "grid",
            "dense_cell_map",
            "core_points",
            "core_cell_map",
            "outliers",
        }

    def test_broadcast_join_fewer_shuffled_records(self, clustered_2d):
        ctx_plain = Context(default_parallelism=4)
        DistributedEngine(
            num_partitions=4, join_strategy="plain", context=ctx_plain
        ).detect(clustered_2d, 0.6, 8)
        ctx_broadcast = Context(default_parallelism=4)
        DistributedEngine(
            num_partitions=4, join_strategy="broadcast", context=ctx_broadcast
        ).detect(clustered_2d, 0.6, 8)
        # The broadcast join eliminates the join shuffles of the grid
        # and the points-to-check, so fewer records cross the network.
        assert (
            ctx_broadcast.metrics.records_shuffled
            < ctx_plain.metrics.records_shuffled
        )


class TestEdgeCases:
    def test_empty_input(self):
        result = DistributedEngine(num_partitions=2).detect(
            np.zeros((0, 2)), 1.0, 5
        )
        assert result.n_points == 0

    def test_more_partitions_than_points(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0]])
        result = DistributedEngine(num_partitions=8).detect(points, 1.0, 2)
        assert result.outlier_mask.all()

    def test_all_points_in_one_dense_cell(self):
        points = np.tile([[1.0, 1.0]], (20, 1)) + np.linspace(
            0, 1e-6, 20
        ).reshape(-1, 1)
        result = DistributedEngine(num_partitions=3).detect(points, 1.0, 5)
        assert result.core_mask.all()
        assert not result.outlier_mask.any()

    def test_no_core_points_everything_outlier(self, rng):
        points = rng.uniform(-100, 100, size=(30, 2))
        result = DistributedEngine(num_partitions=3).detect(points, 0.01, 5)
        assert result.outlier_mask.all()
        assert not result.core_mask.any()
