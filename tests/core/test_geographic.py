"""Tests for the geographic (lat/lon) convenience wrapper."""

import numpy as np
import pytest

from repro.core.geographic import detect_geographic
from repro.exceptions import DataValidationError


class TestDetectGeographic:
    def test_finds_stray_fixes(self, rng):
        city = np.column_stack(
            [rng.normal(48.85, 0.005, 400), rng.normal(2.35, 0.005, 400)]
        )
        strays = np.array([[49.8, 3.5], [47.9, 1.1]])
        latlon = np.vstack([city, strays])
        result = detect_geographic(latlon, eps_meters=800.0, min_pts=10)
        assert result.outlier_mask[-2:].all()
        assert result.outlier_mask[:-2].mean() < 0.05

    def test_eps_is_in_meters(self, rng):
        # Two tight clusters ~2 km apart: with eps = 500 m they stay
        # separate communities but no outliers; a point 10 km out is one.
        base = np.array([48.85, 2.35])
        cluster_a = base + rng.normal(0, 0.0005, size=(100, 2))
        cluster_b = base + [0.018, 0.0] + rng.normal(0, 0.0005, size=(100, 2))
        stray = base + [0.09, 0.0]
        latlon = np.vstack([cluster_a, cluster_b, [stray]])
        result = detect_geographic(latlon, eps_meters=500.0, min_pts=10)
        assert result.outlier_mask[-1]
        assert not result.outlier_mask[:-1].any()

    def test_origin_recorded_in_stats(self, rng):
        latlon = np.column_stack(
            [rng.normal(10.0, 0.01, 50), rng.normal(20.0, 0.01, 50)]
        )
        result = detect_geographic(latlon, eps_meters=5_000.0, min_pts=3)
        lat0, lon0 = result.stats["projection_origin"]
        assert lat0 == pytest.approx(10.0, abs=0.1)
        assert lon0 == pytest.approx(20.0, abs=0.1)
        assert result.stats["eps_meters"] == 5_000.0

    def test_custom_origin(self, rng):
        latlon = np.column_stack(
            [rng.normal(10.0, 0.01, 50), rng.normal(20.0, 0.01, 50)]
        )
        result = detect_geographic(
            latlon, eps_meters=5_000.0, min_pts=3, origin=(10.0, 20.0)
        )
        assert result.stats["projection_origin"] == (10.0, 20.0)

    def test_distributed_engine_forwarded(self, rng):
        latlon = np.column_stack(
            [rng.normal(0.0, 0.01, 80), rng.normal(0.0, 0.01, 80)]
        )
        vec = detect_geographic(latlon, eps_meters=2_000.0, min_pts=5)
        dist = detect_geographic(
            latlon,
            eps_meters=2_000.0,
            min_pts=5,
            engine="distributed",
            num_partitions=3,
        )
        assert np.array_equal(vec.outlier_mask, dist.outlier_mask)

    def test_invalid_latitudes_rejected(self):
        with pytest.raises(DataValidationError):
            detect_geographic(
                np.array([[100.0, 0.0]]), eps_meters=100.0, min_pts=2
            )


class TestDDLOFTopN:
    def test_top_n_flags_exact_count(self, rng):
        from repro.baselines import DDLOF

        points = rng.normal(size=(200, 2))
        result = DDLOF(k=6, top_n=9, points_per_block=50).detect(points)
        assert result.n_outliers == 9

    def test_top_n_are_the_highest_scores(self, rng):
        from repro.baselines import DDLOF
        from repro.baselines.lof import lof_scores

        points = rng.normal(size=(150, 2))
        result = DDLOF(k=6, top_n=5, points_per_block=40).detect(points)
        expected = np.argsort(-lof_scores(points, 6))[:5]
        assert set(result.outlier_indices) == set(int(i) for i in expected)

    def test_top_n_validation(self):
        from repro.baselines import DDLOF
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError):
            DDLOF(top_n=0)
