"""Tests for repro.core.grid: cell geometry and point-cell indexing."""

import math

import numpy as np
import pytest

from repro.core.grid import (
    Grid,
    cell_coordinates,
    cell_side_length,
    validate_points,
)
from repro.exceptions import DataValidationError, ParameterError


class TestCellSideLength:
    def test_diagonal_equals_eps(self):
        # A hypercube of side l = eps/sqrt(d) has diagonal exactly eps.
        for n_dims in (1, 2, 3, 5, 9):
            side = cell_side_length(2.0, n_dims)
            assert math.isclose(side * math.sqrt(n_dims), 2.0)

    def test_two_dims_matches_paper_example(self):
        # Paper: eps = sqrt(2), d = 2 -> side length 1.
        assert math.isclose(cell_side_length(math.sqrt(2.0), 2), 1.0)

    @pytest.mark.parametrize("eps", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_eps_rejected(self, eps):
        with pytest.raises(ParameterError):
            cell_side_length(eps, 2)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ParameterError):
            cell_side_length(1.0, 0)


class TestValidatePoints:
    def test_accepts_lists(self):
        out = validate_points([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError):
            validate_points(np.zeros(5))

    def test_rejects_3d(self):
        with pytest.raises(DataValidationError):
            validate_points(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError):
            validate_points([[0.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(DataValidationError):
            validate_points([[0.0, float("inf")]])

    def test_rejects_zero_columns(self):
        with pytest.raises(DataValidationError):
            validate_points(np.zeros((3, 0)))

    def test_empty_rows_allowed(self):
        out = validate_points(np.zeros((0, 2)))
        assert out.shape == (0, 2)


class TestCellCoordinates:
    def test_paper_example_assignment(self):
        # eps = sqrt(2) in 2-D -> unit cells; floor of the coordinates.
        points = np.array([[1.1, -0.3], [1.9, -0.9], [0.7, -1.5], [0.3, -1.8]])
        coords = cell_coordinates(points, math.sqrt(2.0))
        assert coords.tolist() == [[1, -1], [1, -1], [0, -2], [0, -2]]

    def test_negative_coordinates_floor(self):
        coords = cell_coordinates(np.array([[-0.1, -1.0]]), math.sqrt(2.0))
        assert coords.tolist() == [[-1, -1]]

    def test_scaling_with_eps(self):
        point = np.array([[10.0, 10.0]])
        small = cell_coordinates(point, 0.1)
        large = cell_coordinates(point, 100.0)
        assert (np.abs(small) > np.abs(large)).all()


class TestGrid:
    def test_partition_is_complete(self, clustered_2d):
        grid = Grid(clustered_2d, eps=0.8)
        assert grid.counts.sum() == grid.n_points == clustered_2d.shape[0]

    def test_partition_is_non_overlapping(self, clustered_2d):
        grid = Grid(clustered_2d, eps=0.8)
        seen = np.zeros(grid.n_points, dtype=int)
        for cell_index in range(grid.n_cells):
            seen[grid.cell_members(cell_index)] += 1
        assert (seen == 1).all()

    def test_members_have_matching_coords(self, clustered_2d):
        grid = Grid(clustered_2d, eps=0.8)
        for cell_index in range(grid.n_cells):
            members = grid.cell_members(cell_index)
            assert (grid.coords[members] == grid.cells[cell_index]).all()

    def test_same_cell_points_within_eps(self, clustered_2d):
        # Geometric guarantee behind Lemma 1.
        eps = 0.8
        grid = Grid(clustered_2d, eps=eps)
        for cell_index in range(grid.n_cells):
            members = grid.cell_members(cell_index)
            pts = clustered_2d[members]
            diffs = pts[:, None, :] - pts[None, :, :]
            dists = np.sqrt((diffs**2).sum(axis=2))
            assert (dists <= eps + 1e-9).all()

    def test_point_cell_consistency(self, clustered_2d):
        grid = Grid(clustered_2d, eps=0.8)
        for point_index in range(0, grid.n_points, 17):
            cell_index = grid.cell_of_point(point_index)
            assert point_index in grid.cell_members(cell_index)

    def test_cell_index_lookup(self, clustered_2d):
        grid = Grid(clustered_2d, eps=0.8)
        for cell_index in range(grid.n_cells):
            cell = tuple(int(c) for c in grid.cells[cell_index])
            assert grid.cell_index(cell) == cell_index
        assert grid.cell_index((10**6, 10**6)) is None

    def test_wide_range_fallback(self):
        # Coordinate spans too wide to pack into 63 bits.
        points = np.array([[0.0, 0.0], [1e15, 1e15], [-1e15, 1e15]])
        grid = Grid(points, eps=0.5)
        assert grid.n_cells == 3
        assert grid.counts.sum() == 3

    def test_single_point(self):
        grid = Grid(np.array([[1.0, 2.0]]), eps=1.0)
        assert grid.n_cells == 1
        assert grid.cell_members(0).tolist() == [0]

    def test_duplicate_points_share_cell(self):
        points = np.array([[1.0, 1.0]] * 5)
        grid = Grid(points, eps=1.0)
        assert grid.n_cells == 1
        assert grid.counts.tolist() == [5]

    def test_stats(self, clustered_2d):
        grid = Grid(clustered_2d, eps=0.8)
        stats = grid.stats()
        assert stats.n_points == clustered_2d.shape[0]
        assert stats.n_cells == grid.n_cells
        assert stats.max_cell_population == grid.counts.max()
        assert stats.mean_cell_population == pytest.approx(grid.counts.mean())

    def test_empty_grid_stats(self):
        grid = Grid(np.zeros((0, 2)), eps=1.0)
        stats = grid.stats()
        assert stats.n_points == 0
        assert stats.n_cells == 0

    def test_repr(self, clustered_2d):
        text = repr(Grid(clustered_2d, eps=0.8))
        assert "Grid(" in text and "n_cells=" in text
