"""Tests for the incremental DBSCOUT extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.incremental import IncrementalDBSCOUT
from repro.core.vectorized import detect as batch_detect
from repro.exceptions import DataValidationError, ParameterError


def batch_equivalent(detector: IncrementalDBSCOUT, points: np.ndarray):
    result = detector.detect()
    expected = batch_detect(points, detector.eps, detector.min_pts)
    assert np.array_equal(result.core_mask, expected.core_mask)
    assert np.array_equal(result.outlier_mask, expected.outlier_mask)


class TestBasics:
    def test_empty_detector(self):
        result = IncrementalDBSCOUT(1.0, 3).detect()
        assert result.n_points == 0

    def test_single_batch_matches_batch_engine(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        batch_equivalent(detector, clustered_2d)

    def test_two_batches_match_batch_engine(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d[:150])
        detector.insert(clustered_2d[150:])
        batch_equivalent(detector, clustered_2d)

    def test_detect_between_batches(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d[:100])
        batch_equivalent(detector, clustered_2d[:100])
        detector.insert(clustered_2d[100:])
        batch_equivalent(detector, clustered_2d)

    def test_many_small_batches(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        for start in range(0, clustered_2d.shape[0], 25):
            detector.insert(clustered_2d[start : start + 25])
            batch_equivalent(detector, clustered_2d[: start + 25])

    def test_point_by_point(self, rng):
        points = np.vstack(
            [rng.normal(0, 0.4, (30, 2)), rng.uniform(-5, 5, (5, 2))]
        )
        detector = IncrementalDBSCOUT(0.7, 4)
        for index in range(points.shape[0]):
            detector.insert(points[index : index + 1])
        batch_equivalent(detector, points)

    def test_empty_batch_is_noop(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        detector.insert(np.zeros((0, 2)))
        batch_equivalent(detector, clustered_2d)

    def test_buffer_growth(self, rng):
        detector = IncrementalDBSCOUT(0.5, 3, initial_capacity=4)
        points = rng.normal(size=(300, 2))
        for start in range(0, 300, 7):
            detector.insert(points[start : start + 7])
        assert detector.n_points == 300
        batch_equivalent(detector, points)


class TestTransitions:
    def test_outlier_becomes_inlier(self):
        # A lone point is an outlier until a dense cluster forms around it.
        detector = IncrementalDBSCOUT(1.0, 4)
        detector.insert(np.array([[5.0, 5.0]]))
        assert detector.detect().outlier_mask.tolist() == [True]
        detector.insert(
            np.array([[5.1, 5.0], [5.0, 5.1], [4.9, 5.0], [5.0, 4.9]])
        )
        result = detector.detect()
        assert not result.outlier_mask.any()
        assert result.core_mask.all()

    def test_cell_becomes_dense(self):
        detector = IncrementalDBSCOUT(1.0, 5)
        base = np.tile([[1.0, 1.0]], (4, 1))
        detector.insert(base)
        assert not detector.detect().core_mask.any()
        detector.insert(np.array([[1.0, 1.0]]))
        result = detector.detect()
        assert result.core_mask.all()  # Lemma 1 kicks in at 5 points

    def test_far_insert_does_not_disturb_existing(self, rng):
        cluster = rng.normal(0.0, 0.3, size=(100, 2))
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(cluster)
        before = detector.detect()
        detector.insert(np.array([[1e6, 1e6]]))
        after = detector.detect()
        assert np.array_equal(
            before.outlier_mask, after.outlier_mask[:-1]
        )
        assert after.outlier_mask[-1]

    def test_neighbor_cell_promotion(self):
        # Points in an adjacent cell become core once the neighborhood
        # fills up — the update must propagate across the cell border.
        detector = IncrementalDBSCOUT(1.0, 6)
        side = 1.0 / np.sqrt(2.0)
        left = np.tile([[side - 0.01, 0.1]], (3, 1))
        detector.insert(left)
        assert not detector.detect().core_mask.any()
        right = np.tile([[side + 0.01, 0.1]], (3, 1))
        detector.insert(right)
        result = detector.detect()
        assert result.core_mask.all()


class TestRecomputationScope:
    def test_local_insert_recomputes_locally(self, rng):
        spread = rng.uniform(-100.0, 100.0, size=(2000, 2))
        detector = IncrementalDBSCOUT(1.0, 5)
        detector.insert(spread)
        detector.detect()
        detector.insert(rng.normal(0.0, 0.5, size=(10, 2)))
        result = detector.detect()
        # Only the neighborhood of the insertion should be touched.
        assert result.stats["outlier_cells_recomputed"] < 200
        assert result.stats["n_cells"] > 1000

    def test_clean_detect_is_cached(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        first = detector.detect()
        second = detector.detect()
        assert second.stats["dirty_cells"] == 0
        assert np.array_equal(first.outlier_mask, second.outlier_mask)


class TestValidation:
    def test_dimension_mismatch(self, clustered_2d, clustered_3d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        with pytest.raises(DataValidationError):
            detector.insert(clustered_3d)

    def test_invalid_capacity(self):
        with pytest.raises(ParameterError):
            IncrementalDBSCOUT(1.0, 3, initial_capacity=0)

    def test_repr(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        assert "pending_dirty" in repr(detector)


class TestTelemetry:
    def test_lifetime_counters_track_churn(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d[:100])
        detector.insert(clustered_2d[100:])
        detector.remove([0, 1, 2])
        detector.detect()
        counters = detector.metrics.snapshot()
        n = clustered_2d.shape[0]
        assert counters["incremental.inserts"] == 2
        assert counters["incremental.points_inserted"] == n
        assert counters["incremental.removes"] == 1
        assert counters["incremental.points_removed"] == 3
        assert counters["incremental.window_points"] == n - 3
        assert counters["incremental.detects"] == 1
        assert counters["incremental.core_cells_recomputed"] > 0
        assert detector.n_active == n - 3

    def test_detect_record_carries_counters_all_declared(
        self, clustered_2d
    ):
        from repro.obs.names import undeclared

        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        result = detector.detect()
        counters = result.record.counters
        assert counters["incremental.inserts"] == 1
        assert counters["incremental.detects"] == 1
        assert undeclared(counters) == []

    def test_insert_and_remove_emit_spans_when_tracing(
        self, clustered_2d
    ):
        from repro import obs

        detector = IncrementalDBSCOUT(0.8, 8)
        obs.enable_tracing()
        tracer = obs.Tracer()
        try:
            with tracer.activate():
                detector.insert(clustered_2d)
                detector.remove([0])
        finally:
            obs.disable_tracing()
        names = [record.name for record in tracer.spans()]
        assert "incremental.insert" in names
        assert "incremental.remove" in names


# Property: any insertion split yields the batch result (dyadic lattice
# for exact comparisons, as in test_core_properties).
coords = st.integers(min_value=-200, max_value=200).map(lambda k: k / 8.0)


@settings(max_examples=40, deadline=None)
@given(
    points=st.integers(min_value=1, max_value=40).flatmap(
        lambda n: arrays(np.float64, (n, 2), elements=coords)
    ),
    splits=st.lists(st.integers(min_value=0, max_value=40), max_size=4),
    eps_k=st.integers(min_value=1, max_value=80),
    min_pts=st.integers(min_value=1, max_value=6),
)
def test_any_split_matches_batch(points, splits, eps_k, min_pts):
    eps = eps_k / 8.0
    boundaries = sorted(s % (points.shape[0] + 1) for s in splits)
    detector = IncrementalDBSCOUT(eps, min_pts)
    previous = 0
    for boundary in boundaries + [points.shape[0]]:
        if boundary > previous:
            detector.insert(points[previous:boundary])
            previous = boundary
    if previous < points.shape[0]:
        detector.insert(points[previous:])
    result = detector.detect()
    expected = batch_detect(points, eps, min_pts)
    assert np.array_equal(result.core_mask, expected.core_mask)
    assert np.array_equal(result.outlier_mask, expected.outlier_mask)
