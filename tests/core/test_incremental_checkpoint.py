"""Tests for IncrementalDBSCOUT checkpointing (save/load)."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalDBSCOUT
from repro.core.vectorized import detect as batch_detect
from repro.exceptions import DataValidationError, ParameterError


class TestCheckpoint:
    def test_roundtrip_preserves_result(self, clustered_2d, tmp_path):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        original = detector.detect()
        path = tmp_path / "state.npz"
        detector.save(path)
        restored = IncrementalDBSCOUT.load(path)
        result = restored.detect()
        assert np.array_equal(result.outlier_mask, original.outlier_mask)
        assert np.array_equal(result.core_mask, original.core_mask)

    def test_restored_detector_accepts_inserts(self, clustered_2d, tmp_path):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d[:200])
        detector.detect()
        path = tmp_path / "state.npz"
        detector.save(path)
        restored = IncrementalDBSCOUT.load(path)
        restored.insert(clustered_2d[200:])
        result = restored.detect()
        expected = batch_detect(clustered_2d, 0.8, 8)
        assert np.array_equal(result.outlier_mask, expected.outlier_mask)

    def test_pending_dirty_state_survives(self, clustered_2d, tmp_path):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d[:200])
        detector.detect()
        detector.insert(clustered_2d[200:])  # dirty, not yet detected
        path = tmp_path / "state.npz"
        detector.save(path)
        restored = IncrementalDBSCOUT.load(path)
        result = restored.detect()
        expected = batch_detect(clustered_2d, 0.8, 8)
        assert np.array_equal(result.outlier_mask, expected.outlier_mask)

    def test_removals_survive(self, clustered_2d, tmp_path):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        detector.remove(np.arange(50))
        detector.detect()
        path = tmp_path / "state.npz"
        detector.save(path)
        restored = IncrementalDBSCOUT.load(path)
        assert not restored.active_mask[:50].any()
        result = restored.detect()
        expected = batch_detect(clustered_2d[50:], 0.8, 8)
        assert np.array_equal(
            result.outlier_mask[50:], expected.outlier_mask
        )

    def test_parameters_restored(self, clustered_2d, tmp_path):
        detector = IncrementalDBSCOUT(0.37, 7)
        detector.insert(clustered_2d)
        path = tmp_path / "state.npz"
        detector.save(path)
        restored = IncrementalDBSCOUT.load(path)
        assert restored.eps == 0.37
        assert restored.min_pts == 7
        assert restored.n_points == clustered_2d.shape[0]

    def test_empty_detector_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            IncrementalDBSCOUT(1.0, 3).save(tmp_path / "state.npz")

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(DataValidationError):
            IncrementalDBSCOUT.load(tmp_path / "nope.npz")
