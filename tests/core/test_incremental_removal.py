"""Tests for deletion / sliding-window support in IncrementalDBSCOUT."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalDBSCOUT
from repro.core.vectorized import detect as batch_detect
from repro.exceptions import ParameterError


def active_equivalent(detector: IncrementalDBSCOUT, all_points: np.ndarray):
    """Result restricted to active points equals batch on that subset."""
    result = detector.detect()
    active = detector.active_mask
    expected = batch_detect(all_points[active], detector.eps, detector.min_pts)
    assert np.array_equal(result.core_mask[active], expected.core_mask)
    assert np.array_equal(result.outlier_mask[active], expected.outlier_mask)
    # Removed points are neither core nor outliers.
    assert not result.core_mask[~active].any()
    assert not result.outlier_mask[~active].any()


class TestRemoval:
    def test_remove_then_matches_batch_on_survivors(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        detector.detect()
        detector.remove(np.arange(0, 60))
        active_equivalent(detector, clustered_2d)

    def test_remove_before_first_detect(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        detector.remove([0, 5, 10])
        active_equivalent(detector, clustered_2d)

    def test_inlier_becomes_outlier_when_cluster_dissolves(self):
        cluster = np.tile([[1.0, 1.0]], (6, 1)) + np.linspace(
            0, 0.01, 6
        ).reshape(-1, 1)
        detector = IncrementalDBSCOUT(1.0, 5)
        detector.insert(cluster)
        assert not detector.detect().outlier_mask.any()
        detector.remove([0, 1, 2, 3])  # only two points remain
        result = detector.detect()
        active = detector.active_mask
        assert result.outlier_mask[active].all()

    def test_core_status_degrades_across_cells(self):
        # Removing support in a neighbor cell demotes cores next door.
        side = 1.0 / np.sqrt(2.0)
        left = np.tile([[side - 0.01, 0.1]], (3, 1))
        right = np.tile([[side + 0.01, 0.1]], (3, 1))
        detector = IncrementalDBSCOUT(1.0, 6)
        detector.insert(np.vstack([left, right]))
        assert detector.detect().core_mask.all()
        detector.remove([5])
        result = detector.detect()
        active = detector.active_mask
        assert not result.core_mask[active].any()

    def test_sliding_window_stream(self, rng):
        # A window of 3 batches slides over a drifting stream; after
        # every slide the result equals batch detection on the window.
        batches = [
            rng.normal(loc=(step * 0.5, 0.0), scale=0.3, size=(40, 2))
            for step in range(8)
        ]
        detector = IncrementalDBSCOUT(0.6, 5)
        all_points = np.zeros((0, 2))
        window_start = 0  # index of the first active point
        for step, batch in enumerate(batches):
            detector.insert(batch)
            all_points = np.vstack([all_points, batch])
            if step >= 3:
                expired = np.arange(window_start, window_start + 40)
                detector.remove(expired)
                window_start += 40
            active_equivalent(detector, all_points)

    def test_remove_then_reinsert_region(self, rng):
        points = rng.normal(size=(100, 2))
        detector = IncrementalDBSCOUT(0.5, 4)
        detector.insert(points)
        detector.detect()
        detector.remove(np.arange(50))
        detector.detect()
        fresh = rng.normal(size=(30, 2))
        detector.insert(fresh)
        combined = np.vstack([points, fresh])
        active_equivalent(detector, combined)

    def test_empty_removal_is_noop(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        before = detector.detect()
        detector.remove(np.array([], dtype=np.int64))
        after = detector.detect()
        assert np.array_equal(before.outlier_mask, after.outlier_mask)


class TestRandomisedSequences:
    """Hypothesis: arbitrary insert/remove interleavings match batch."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_operations=st.integers(min_value=1, max_value=8),
        eps_k=st.integers(min_value=2, max_value=40),
        min_pts=st.integers(min_value=1, max_value=5),
    )
    def test_interleaved_ops_match_batch(
        self, seed, n_operations, eps_k, min_pts
    ):
        import numpy as np

        eps = eps_k / 8.0
        rng = np.random.default_rng(seed)
        detector = IncrementalDBSCOUT(eps, min_pts)
        points = np.zeros((0, 2))
        active = np.zeros(0, dtype=bool)
        for _ in range(n_operations):
            if active.sum() > 4 and rng.random() < 0.4:
                candidates = np.flatnonzero(active)
                chosen = rng.choice(
                    candidates,
                    size=rng.integers(1, min(4, candidates.size) + 1),
                    replace=False,
                )
                detector.remove(chosen)
                active[chosen] = False
            else:
                batch = np.round(
                    rng.uniform(-10, 10, size=(rng.integers(1, 8), 2)) * 8
                ) / 8.0
                detector.insert(batch)
                points = np.vstack([points, batch])
                active = np.concatenate(
                    [active, np.ones(batch.shape[0], dtype=bool)]
                )
            if rng.random() < 0.5:
                detector.detect()  # interleave detections
        result = detector.detect()
        expected = batch_detect(points[active], eps, min_pts)
        assert np.array_equal(result.core_mask[active], expected.core_mask)
        assert np.array_equal(
            result.outlier_mask[active], expected.outlier_mask
        )
        assert not result.outlier_mask[~active].any()


class TestRemovalValidation:
    def test_out_of_range(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        with pytest.raises(ParameterError):
            detector.remove([clustered_2d.shape[0]])
        with pytest.raises(ParameterError):
            detector.remove([-1])

    def test_double_removal(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        detector.remove([3])
        with pytest.raises(ParameterError):
            detector.remove([3])

    def test_active_mask_reflects_removals(self, clustered_2d):
        detector = IncrementalDBSCOUT(0.8, 8)
        detector.insert(clustered_2d)
        detector.remove([1, 4])
        active = detector.active_mask
        assert not active[1] and not active[4]
        assert active.sum() == clustered_2d.shape[0] - 2
