"""Invariance property tests: unit coherence of the detectors.

Outlier decisions depend only on the ratios of distances to eps, so
uniformly rescaling the coordinates *and* eps must not change the
result; likewise for rigid motions (rotations).  These properties
catch unit-handling bugs (e.g. a forgotten sqrt(d)) that the oracles
cannot, because the oracle would make the same mistake symmetrically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.vectorized import detect

coords = st.integers(min_value=-200, max_value=200).map(lambda k: k / 8.0)
points_2d = st.integers(min_value=2, max_value=50).flatmap(
    lambda n: arrays(np.float64, (n, 2), elements=coords)
)
params = st.tuples(
    st.integers(min_value=1, max_value=120).map(lambda k: k / 8.0),
    st.integers(min_value=1, max_value=6),
)


@settings(max_examples=50, deadline=None)
@given(
    points=points_2d,
    eps_minpts=params,
    scale_exp=st.integers(min_value=-3, max_value=6),
)
def test_scaling_invariance(points, eps_minpts, scale_exp):
    # Powers of two keep every coordinate and eps exactly representable,
    # so the rescaled run sees bit-identical distance ratios.
    eps, min_pts = eps_minpts
    scale = 2.0**scale_exp
    base = detect(points, eps, min_pts)
    scaled = detect(points * scale, eps * scale, min_pts)
    assert np.array_equal(base.outlier_mask, scaled.outlier_mask)
    assert np.array_equal(base.core_mask, scaled.core_mask)


@settings(max_examples=40, deadline=None)
@given(points=points_2d, eps_minpts=params)
def test_axis_swap_invariance(points, eps_minpts):
    eps, min_pts = eps_minpts
    base = detect(points, eps, min_pts)
    swapped = detect(points[:, ::-1], eps, min_pts)
    assert np.array_equal(base.outlier_mask, swapped.outlier_mask)
    assert np.array_equal(base.core_mask, swapped.core_mask)


@settings(max_examples=40, deadline=None)
@given(points=points_2d, eps_minpts=params)
def test_reflection_invariance(points, eps_minpts):
    eps, min_pts = eps_minpts
    base = detect(points, eps, min_pts)
    mirrored = detect(points * np.array([-1.0, 1.0]), eps, min_pts)
    assert np.array_equal(base.outlier_mask, mirrored.outlier_mask)


class TestRotationInvariance:
    """Rotations are not float-exact, so use configurations with slack:
    no pairwise distance within 1e-9 of eps."""

    @pytest.mark.parametrize("angle_deg", [30.0, 45.0, 90.0, 137.0])
    def test_rotated_cluster(self, rng, angle_deg):
        points = np.vstack(
            [rng.normal(0, 0.5, (200, 2)), rng.uniform(-8, 8, (25, 2))]
        )
        eps, min_pts = 0.7, 6
        # Verify the slack assumption, then rotate.
        diffs = points[:, None, :] - points[None, :, :]
        dists = np.sqrt((diffs**2).sum(axis=2))
        assert np.abs(dists - eps).min() > 1e-9
        theta = np.radians(angle_deg)
        rotation = np.array(
            [
                [np.cos(theta), -np.sin(theta)],
                [np.sin(theta), np.cos(theta)],
            ]
        )
        base = detect(points, eps, min_pts)
        rotated = detect(points @ rotation.T, eps, min_pts)
        assert np.array_equal(base.outlier_mask, rotated.outlier_mask)
        assert np.array_equal(base.core_mask, rotated.core_mask)


@settings(max_examples=30, deadline=None)
@given(points=points_2d, eps_minpts=params)
def test_duplicating_dataset_never_creates_outliers_for_minpts2(
    points, eps_minpts
):
    # Doubling every point gives everyone an exact-duplicate neighbor,
    # so with min_pts <= 2 all points become core.
    eps, _ = eps_minpts
    doubled = np.vstack([points, points])
    result = detect(doubled, eps, 2)
    assert result.core_mask.all()
    assert not result.outlier_mask.any()
