"""Bit-identity of the compiled C kernel against the NumPy kernel.

The kernel tier is a pure performance layer: for every (kernel, eps,
minPts, dims) combination the labels AND the ``distance_computations``
counter must match exactly.  The fallback contract is also tested: with
no usable compiler the C kernel silently degrades to NumPy, increments
``kernel.fallback``, and never raises.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.kernels import (
    KERNEL_NAMES,
    Kernel,
    NumpyKernel,
    normalize_kernel,
    normalize_pair_budget,
    resolve_kernel,
)
from repro.core.kernels.base import DEFAULT_PAIR_BUDGET
from repro.core.kernels.c_kernel import c_kernel_status, get_c_kernel
from repro.core.vectorized import VectorizedEngine
from repro.exceptions import KernelBuildError, ParameterError

C_STATUS = c_kernel_status()
needs_c = pytest.mark.skipif(
    not C_STATUS["available"],
    reason=f"C kernel unavailable: {C_STATUS.get('reason')}",
)


def _segments(rng, n_cells, n_dims, scale):
    """Random flat member/candidate segments plus the point array."""
    m_sizes = rng.integers(0, 6, size=n_cells)
    c_sizes = rng.integers(0, 9, size=n_cells)
    n_points = int(m_sizes.sum() + c_sizes.sum()) or 1
    array = rng.uniform(-scale, scale, size=(n_points, n_dims))
    members = rng.integers(0, n_points, size=int(m_sizes.sum()))
    cands = rng.integers(0, n_points, size=int(c_sizes.sum()))
    return array, members, m_sizes, cands, c_sizes


def _run(kernel, array, members, m_sizes, cands, c_sizes, eps_sq, **kw):
    counters = {}
    counts = kernel.segmented_pair_counts(
        array, members, m_sizes, cands, c_sizes, eps_sq, counters, **kw
    )
    return counts, counters


class TestKernelValidation:
    def test_names(self):
        assert KERNEL_NAMES == ("auto", "numpy", "c")

    def test_none_is_auto(self):
        assert normalize_kernel(None) == "auto"

    def test_instance_passthrough(self):
        kernel = NumpyKernel()
        assert normalize_kernel(kernel) is kernel

    @pytest.mark.parametrize("bad", ["fortran", 3, b"c", True])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ParameterError, match="kernel"):
            normalize_kernel(bad)

    def test_numpy_resolution_is_singleton(self):
        assert resolve_kernel("numpy") is resolve_kernel("numpy")

    def test_pair_budget_default(self):
        assert normalize_pair_budget(None) == DEFAULT_PAIR_BUDGET

    @pytest.mark.parametrize("bad", [0, -5, 2.5, "many", True])
    def test_pair_budget_rejects(self, bad):
        with pytest.raises(ParameterError, match="pair_budget"):
            normalize_pair_budget(bad)


@needs_c
class TestCKernelParity:
    """The C kernel matches NumPy bit-for-bit, counters included."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n_dims", [1, 2, 3, 5])
    def test_segmented_counts_match(self, seed, n_dims):
        rng = np.random.default_rng(seed)
        args = _segments(rng, n_cells=12, n_dims=n_dims, scale=2.0)
        eps_sq = float(rng.uniform(0.05, 2.0)) ** 2
        expected, ec = _run(NumpyKernel(), *args, eps_sq)
        got, gc = _run(get_c_kernel(), *args, eps_sq)
        np.testing.assert_array_equal(expected, got)
        assert ec["distance_computations"] == gc["distance_computations"]

    def test_boundary_pair_counted_inclusively(self):
        # 3-4-5 triangle: sq distance is exactly eps_sq = 25.0; the
        # contract is sq <= eps_sq, so both kernels must count it.
        array = np.array([[0.0, 0.0], [3.0, 4.0]])
        members = np.array([0])
        cands = np.array([0, 1])
        for kernel in (NumpyKernel(), get_c_kernel()):
            counts, _ = _run(
                kernel,
                array,
                members,
                np.array([1]),
                cands,
                np.array([2]),
                25.0,
            )
            assert counts.tolist() == [2]

    @pytest.mark.parametrize("pair_budget", [1, 7, 10_000])
    def test_pair_budget_invariance(self, pair_budget):
        rng = np.random.default_rng(99)
        args = _segments(rng, n_cells=9, n_dims=3, scale=1.5)
        baseline, _ = _run(NumpyKernel(), *args, 0.8)
        for kernel in (NumpyKernel(), get_c_kernel()):
            counts, _ = _run(kernel, *args, 0.8, pair_budget=pair_budget)
            np.testing.assert_array_equal(baseline, counts)

    def test_sq_dists_match(self):
        rng = np.random.default_rng(4)
        targets = rng.normal(size=(7, 4))
        cands = rng.normal(size=(11, 4))
        np.testing.assert_array_equal(
            NumpyKernel().sq_dists(targets, cands),
            get_c_kernel().sq_dists(targets, cands),
        )

    def test_sq_dist_matches_python(self):
        p, q = (0.1, 0.2, 0.3), (1.7, -0.4, 2.25)
        assert get_c_kernel().sq_dist(p, q) == NumpyKernel().sq_dist(p, q)

    @pytest.mark.parametrize("eps", [0.3, 0.5, 1.0])
    @pytest.mark.parametrize("min_pts", [2, 5])
    @pytest.mark.parametrize("n_dims", [1, 2, 4])
    def test_engine_labels_bit_identical(self, eps, min_pts, n_dims):
        rng = np.random.default_rng(n_dims * 101 + min_pts)
        points = np.vstack(
            [
                rng.normal(0.0, 0.4, size=(150, n_dims)),
                rng.uniform(3.0, 6.0, size=(12, n_dims)),
            ]
        )
        ref = VectorizedEngine(kernel="numpy").detect(points, eps, min_pts)
        got = VectorizedEngine(kernel="c").detect(points, eps, min_pts)
        np.testing.assert_array_equal(ref.core_mask, got.core_mask)
        np.testing.assert_array_equal(ref.outlier_mask, got.outlier_mask)
        assert (
            ref.stats["distance_computations"]
            == got.stats["distance_computations"]
        )

    def test_kernel_recorded_in_stats_context(self):
        points = np.random.default_rng(0).normal(size=(60, 2))
        result = VectorizedEngine(kernel="c").detect(points, 0.5, 3)
        assert result.record.context["kernel"] == "c"


class TestFallback:
    """No compiler → NumPy labels, kernel.fallback metric, no error."""

    def test_build_error_without_compiler(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        with pytest.raises(KernelBuildError):
            get_c_kernel()

    @pytest.mark.parametrize("requested", ["auto", "c"])
    def test_resolve_falls_back_and_counts(
        self, requested, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        counters = {}
        kernel = resolve_kernel(requested, counters)
        assert kernel.name == "numpy"
        assert counters["kernel.fallback"] == 1

    def test_detect_without_compiler_subprocess(self, tmp_path):
        """End-to-end: a fresh process with a broken CC still detects,
        labels match the NumPy kernel, and the run record carries the
        fallback metric."""
        code = """
import json, numpy as np
from repro.core.vectorized import VectorizedEngine
rng = np.random.default_rng(7)
points = np.vstack([
    rng.normal(0.0, 0.3, size=(120, 2)),
    np.array([[8.0, 8.0]]),
])
ref = VectorizedEngine(kernel="numpy").detect(points, 0.5, 5)
got = VectorizedEngine(kernel="c").detect(points, 0.5, 5)
assert np.array_equal(ref.outlier_mask, got.outlier_mask)
assert np.array_equal(ref.core_mask, got.core_mask)
print(json.dumps({
    "kernel": got.record.context["kernel"],
    "fallback": got.stats.get("kernel.fallback"),
}))
"""
        env = dict(os.environ)
        env["CC"] = "/nonexistent/compiler"
        env["REPRO_KERNEL_CACHE"] = str(tmp_path)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        import json

        payload = json.loads(proc.stdout.strip().splitlines()[-1])
        assert payload["kernel"] == "numpy"
        assert payload["fallback"] == 1

    def test_status_reports_reason(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        status = c_kernel_status()
        assert status["available"] is False
        assert status["reason"]


class TestKernelInterface:
    def test_custom_kernel_instance_accepted_by_engine(self):
        calls = []

        class Spy(NumpyKernel):
            name = "spy"

            def segmented_pair_counts(self, *args, **kwargs):
                calls.append(1)
                return super().segmented_pair_counts(*args, **kwargs)

        points = np.random.default_rng(1).normal(size=(80, 2))
        spy = Spy()
        assert isinstance(spy, Kernel)
        result = VectorizedEngine(kernel=spy).detect(points, 0.4, 3)
        assert calls, "custom kernel was never invoked"
        assert result.record.context["kernel"] == "spy"
