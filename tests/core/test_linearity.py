"""Empirical linearity checks (Lemma 6 / Lemma 8).

The paper proves that DBSCOUT performs at most a constant number of
operations per tuple.  With the engine's distance-computation counters
we can verify the claim empirically: the number of pairwise distance
evaluations per input point must stay bounded as n grows, for a fixed
data distribution and parameters.
"""

import numpy as np

from repro.core.vectorized import detect


def uniform_workload(n_points: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Fixed density: the domain grows with n so that the points-per-cell
    # distribution is n-independent.
    side = np.sqrt(n_points)
    return rng.uniform(0.0, side, size=(n_points, 2))


class TestDistanceBudget:
    def test_counter_present(self, clustered_2d):
        result = detect(clustered_2d, 0.8, 8)
        assert "distance_computations" in result.stats
        assert result.stats["distance_computations"] >= 0

    def test_ops_per_point_bounded_as_n_grows(self):
        eps, min_pts = 1.0, 4
        ratios = []
        for n_points in (2_000, 8_000, 32_000):
            result = detect(uniform_workload(n_points), eps, min_pts)
            ratios.append(
                result.stats["distance_computations"] / n_points
            )
        # Linearity: per-point work must not grow with n.  Allow slack
        # for the random draw; quadratic growth would multiply the
        # ratio by ~16 across this sweep.
        assert ratios[-1] < 2.0 * ratios[0] + 1.0

    def test_ops_bounded_by_stencil_budget(self):
        # Hard bound from Lemma 6: every point is compared at most
        # against the points of its k_d neighboring cells, and only
        # points of non-dense (< min_pts) cells are ever compared.
        eps, min_pts = 1.0, 4
        n_points = 10_000
        points = uniform_workload(n_points, seed=3)
        result = detect(points, eps, min_pts)
        k_d = result.stats["k_d"]
        max_pop = result.stats["max_cell_population"]
        budget = 2 * n_points * k_d * min(max_pop, n_points)
        assert result.stats["distance_computations"] <= budget

    def test_pruning_counter(self):
        # A very sparse workload: almost every cell is pruned without a
        # single distance computation (the Section III-G2 effect).
        rng = np.random.default_rng(1)
        points = rng.uniform(0.0, 1e7, size=(3_000, 2))
        result = detect(points, 1.0, 5)
        assert result.stats["pruned_cells"] > 2_500
        assert result.stats["distance_computations"] == 0

    def test_dense_data_needs_no_distances(self):
        # All points in dense cells: Lemma 1 answers everything and the
        # outlier phase has no non-core cells to scan.
        points = np.tile([[0.5, 0.5]], (500, 1))
        result = detect(points, 1.0, 10)
        assert result.stats["distance_computations"] == 0
        assert result.core_mask.all()
