"""Tests for repro.core.neighbors: stencils, k_d counts, Table I."""

import math

import numpy as np
import pytest

from repro.core.grid import cell_side_length
from repro.core.neighbors import (
    MAX_ENUMERATION_DIMS,
    NeighborStencil,
    count_neighbor_offsets,
    kd_upper_bound,
    max_cell_gap_squared,
    min_cell_gap_squared,
    neighbor_offsets,
)
from repro.exceptions import ParameterError

#: The exact Table I of the paper: d -> (upper bound, actual k_d).
TABLE_I = {
    2: (25, 21),
    3: (125, 117),
    4: (625, 609),
    5: (16807, 3903),
    6: (117649, 28197),
    7: (823543, 197067),
    8: (5764801, 1278129),
    9: (40353607, 8077671),
}


class TestTableI:
    @pytest.mark.parametrize("n_dims", sorted(TABLE_I))
    def test_upper_bound_matches_paper(self, n_dims):
        assert kd_upper_bound(n_dims) == TABLE_I[n_dims][0]

    @pytest.mark.parametrize("n_dims", sorted(TABLE_I))
    def test_actual_kd_matches_paper(self, n_dims):
        assert count_neighbor_offsets(n_dims) == TABLE_I[n_dims][1]

    @pytest.mark.parametrize("n_dims", [2, 3, 4, 5])
    def test_enumeration_agrees_with_count(self, n_dims):
        assert neighbor_offsets(n_dims).shape == (
            count_neighbor_offsets(n_dims),
            n_dims,
        )

    def test_count_below_bound(self):
        for n_dims in range(1, 12):
            assert count_neighbor_offsets(n_dims) <= kd_upper_bound(n_dims)


class TestOffsets:
    def test_zero_offset_included(self):
        # Each cell is a neighbor of itself (Definition 8).
        offsets = neighbor_offsets(3)
        assert any((row == 0).all() for row in offsets)

    def test_symmetry(self):
        # Neighborship is symmetric: -offset is an offset.
        offsets = {tuple(row) for row in neighbor_offsets(3)}
        assert all(tuple(-x for x in off) in offsets for off in offsets)

    def test_2d_excludes_far_corners(self):
        # In 2-D the four (+-2, +-2) corners are NOT neighbors: their
        # minimum gap is sqrt(2) * l = eps, not strictly less.
        offsets = {tuple(row) for row in neighbor_offsets(2)}
        assert (2, 2) not in offsets
        assert (2, -2) not in offsets
        assert (2, 1) in offsets
        assert (2, 0) in offsets

    def test_min_gap_squared(self):
        assert min_cell_gap_squared((0, 0)) == 0
        assert min_cell_gap_squared((1, 1)) == 0
        assert min_cell_gap_squared((2, 0)) == 1
        assert min_cell_gap_squared((2, 2)) == 2
        assert min_cell_gap_squared((-3, 2)) == 5

    def test_max_gap_squared(self):
        # sum_i (|j_i| + 1)^2, in units of the squared cell side.
        assert max_cell_gap_squared((0, 0)) == 2
        assert max_cell_gap_squared((1, 0)) == 5
        assert max_cell_gap_squared((1, 1)) == 8
        assert max_cell_gap_squared((-3, 2)) == 25

    def test_max_gap_bounds_actual_pairs(self):
        # The bound is tight: the farthest corners of cells at the
        # given offset are exactly sqrt(max_gap_sq) * side apart.
        rng = np.random.default_rng(2)
        side = 1.0
        for offset in [(0, 0), (1, 0), (2, -1), (-2, 2)]:
            a = rng.uniform(0.0, side, size=(200, 2))
            b = rng.uniform(0.0, side, size=(200, 2)) + np.multiply(
                offset, side
            )
            d_sq = ((a - b) ** 2).sum(axis=1)
            assert (d_sq <= max_cell_gap_squared(offset) * side**2).all()
            assert (d_sq >= min_cell_gap_squared(offset) * side**2).all()

    def test_only_zero_offset_statically_covered(self):
        # With diagonal-eps cells, max_gap_sq <= d holds only for the
        # zero offset (Lemma 1): static coverage is vacuous beyond the
        # cell itself, which is why the engine refines with per-cell
        # bounding boxes.
        for n_dims in (1, 2, 3, 4):
            for row in neighbor_offsets(n_dims):
                offset = tuple(int(c) for c in row)
                covered = max_cell_gap_squared(offset) <= n_dims
                assert covered == (offset == (0,) * n_dims)

    def test_geometric_validity_of_stencil(self):
        # Every claimed neighbor offset must allow a point pair at
        # distance < eps; every non-neighbor in the candidate box must
        # keep all pairs at distance > eps (half-open cells).
        eps = 1.0
        n_dims = 2
        side = cell_side_length(eps, n_dims)
        offsets = {tuple(row) for row in neighbor_offsets(n_dims)}
        reach = math.isqrt(n_dims - 1) + 1
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                gap_sq = min_cell_gap_squared((dx, dy))
                min_dist = math.sqrt(gap_sq) * side
                if (dx, dy) in offsets:
                    assert min_dist < eps
                else:
                    assert min_dist >= eps - 1e-12

    def test_enumeration_dim_guard(self):
        with pytest.raises(ParameterError):
            neighbor_offsets(MAX_ENUMERATION_DIMS + 1)

    def test_counting_works_beyond_guard(self):
        assert count_neighbor_offsets(MAX_ENUMERATION_DIMS + 1) > 0

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "2"])
    def test_invalid_dims(self, bad):
        with pytest.raises(ParameterError):
            count_neighbor_offsets(bad)

    def test_one_dimension(self):
        # d=1: offsets -1, 0, 1 (gap 0) and +-2 excluded? gap (2-1)^2=1,
        # not < 1, so excluded: k_1 = 3.
        assert count_neighbor_offsets(1) == 3
        assert sorted(neighbor_offsets(1).ravel().tolist()) == [-1, 0, 1]

    def test_offsets_copy_is_safe(self):
        first = neighbor_offsets(2)
        first[0, 0] = 99
        second = neighbor_offsets(2)
        assert second[0, 0] != 99


class TestNeighborStencil:
    def test_kd_property(self):
        # The engine stencil includes the boundary ring (min cell gap
        # exactly eps), so k_d exceeds the paper-strict count of 21.
        stencil = NeighborStencil(2)
        assert stencil.k_d == 25

    def test_strict_stencil_matches_table_i(self):
        stencil = NeighborStencil(2, include_boundary=False)
        assert stencil.k_d == 21

    @pytest.mark.parametrize("n_dims", [1, 2, 3, 4])
    def test_inclusive_stencil_is_superset_of_strict(self, n_dims):
        strict = {
            tuple(row) for row in neighbor_offsets(n_dims)
        }
        inclusive = {
            tuple(row)
            for row in neighbor_offsets(n_dims, include_boundary=True)
        }
        assert strict < inclusive
        # The extra offsets are exactly the boundary ring: cells whose
        # minimal gap equals eps (min_cell_gap_squared == d in units of
        # the squared side length).
        for offset in inclusive - strict:
            assert min_cell_gap_squared(offset) == n_dims

    def test_neighbors_of_translation(self):
        stencil = NeighborStencil(2)
        at_origin = set(stencil.neighbors_of((0, 0)))
        shifted = set(stencil.neighbors_of((5, -3)))
        assert {(x + 5, y - 3) for x, y in at_origin} == shifted

    def test_cell_is_own_neighbor(self):
        stencil = NeighborStencil(3)
        assert (1, 2, 3) in stencil.neighbors_of((1, 2, 3))

    def test_mismatched_dims_rejected_by_cellmap(self):
        from repro.core.cellmap import CellMap

        with pytest.raises(ParameterError):
            CellMap(3, stencil=NeighborStencil(2))

    def test_offset_tuples_cached(self):
        stencil = NeighborStencil(2)
        assert stencil.offset_tuples() is stencil.offset_tuples()

    @pytest.mark.parametrize("n_dims", [1, 2, 3])
    def test_covered_offset_mask_matches_max_gap(self, n_dims):
        stencil = NeighborStencil(n_dims)
        mask = stencil.covered_offset_mask()
        assert mask.shape == (stencil.k_d,)
        for offset, covered in zip(stencil.offsets, mask):
            expected = max_cell_gap_squared(offset) <= n_dims
            assert bool(covered) == expected
        # Exactly the zero offset (see test_only_zero_offset_...).
        assert int(mask.sum()) == 1

    def test_repr(self):
        assert "k_d=25" in repr(NeighborStencil(2))


class TestPairCoverage:
    """Any two points within eps must live in stencil-neighboring cells."""

    @pytest.mark.parametrize("n_dims", [1, 2, 3])
    def test_random_pairs_within_eps_are_neighbors(self, n_dims):
        rng = np.random.default_rng(7)
        eps = 1.0
        side = cell_side_length(eps, n_dims)
        offsets = {tuple(row) for row in neighbor_offsets(n_dims)}
        base = rng.uniform(-5, 5, size=(500, n_dims))
        direction = rng.normal(size=(500, n_dims))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        radius = rng.uniform(0, eps, size=(500, 1))
        other = base + direction * radius
        cell_a = np.floor(base / side).astype(int)
        cell_b = np.floor(other / side).astype(int)
        for a, b in zip(cell_a, cell_b):
            assert tuple((b - a).tolist()) in offsets
