"""Regression tests for the >62-bit packed-key fallback paths.

Both ``Grid._build_index`` and ``build_cell_adjacency`` pack integer
cell coordinates into a single int64 key when the per-dimension spans
fit in 62 bits combined, and fall back to row-wise handling otherwise.
These tests pin the fallback paths to the packed paths' behavior using
coordinate spans wide enough (two clusters ~2^33 cells apart per
dimension in 2-D) that packing is impossible.
"""

import numpy as np

from repro.core.grid import Grid, _pack_columns, cell_side_length
from repro.core.neighbors import NeighborStencil
from repro.core.reference import brute_force_detect
from repro.core.vectorized import VectorizedEngine, build_cell_adjacency

EPS = 1.0
SIDE = cell_side_length(EPS, 2)

#: Inter-cluster shift in cells per dimension: 2 x 34 span bits > 62,
#: so _pack_columns must refuse and the fallbacks must engage.
SHIFT_CELLS = 2**33


def _two_far_clusters(n_each: int = 60, seed: int = 0):
    """Two identical clustered blobs separated by SHIFT_CELLS cells in
    each dimension — far beyond eps, so they cannot interact."""
    rng = np.random.default_rng(seed)
    local = np.vstack(
        [
            rng.normal(0.0, 0.3, size=(n_each - 10, 2)),
            rng.uniform(-4.0, 4.0, size=(10, 2)),
        ]
    )
    far = local + SHIFT_CELLS * SIDE
    return local, np.vstack([local, far])


class TestPackColumns:
    def test_wide_span_refused(self):
        coords = np.array([[0, 0], [SHIFT_CELLS, SHIFT_CELLS]], dtype=np.int64)
        assert _pack_columns(coords) is None

    def test_narrow_span_packed(self):
        coords = np.array([[0, 0], [5, -3]], dtype=np.int64)
        assert _pack_columns(coords) is not None


class TestGridFallback:
    def test_grid_groups_identically_to_packed(self):
        local, combined = _two_far_clusters()
        assert _pack_columns(
            np.floor(combined / SIDE).astype(np.int64)
        ) is None
        wide = Grid(combined, EPS)
        narrow = Grid(local, EPS)
        n_local = local.shape[0]
        # The combined grid must contain each cluster's cells with the
        # same populations, and group the same points together.
        assert wide.n_cells == 2 * narrow.n_cells
        for i in range(narrow.n_cells):
            # Locate by coordinates instead of relying on cell order.
            matches = np.flatnonzero((wide.cells == narrow.cells[i]).all(1))
            assert matches.shape[0] == 1
            members_wide = np.sort(wide.cell_members(matches[0]))
            members_narrow = np.sort(narrow.cell_members(i))
            assert np.array_equal(members_wide, members_narrow)

    def test_per_point_cell_assignment_consistent(self):
        _, combined = _two_far_clusters()
        grid = Grid(combined, EPS)
        assert np.array_equal(
            grid.cells[grid.point_cell], grid.coords
        )
        assert int(grid.counts.sum()) == combined.shape[0]


class TestAdjacencyFallback:
    def test_fallback_matches_blockwise_packed(self):
        local, combined = _two_far_clusters()
        stencil = NeighborStencil(2)
        wide = Grid(combined, EPS)
        assert _pack_columns(wide.cells) is None

        targets, starts = build_cell_adjacency(wide.cells, stencil)
        # Packed reference: each cluster's cells shifted into a narrow
        # range give the same neighbor structure (adjacency is
        # translation invariant, and the clusters cannot interact).
        near_mask = (np.abs(wide.cells) < SHIFT_CELLS // 2).all(axis=1)
        for mask, shift in (
            (near_mask, 0),
            (~near_mask, SHIFT_CELLS),
        ):
            idx = np.flatnonzero(mask)
            shifted = wide.cells[idx] - shift
            assert _pack_columns(shifted) is not None
            ref_targets, ref_starts = build_cell_adjacency(shifted, stencil)
            for row, i in enumerate(idx):
                got = targets[starts[i] : starts[i + 1]]
                expected = idx[
                    ref_targets[ref_starts[row] : ref_starts[row + 1]]
                ]
                assert set(got.tolist()) == set(expected.tolist())
                # No cross-cluster edges.
                assert mask[got].all()

    def test_detection_parity_across_fallback(self):
        # End to end: the full pipeline over the wide dataset must agree
        # with brute force and with per-cluster detection.
        local, combined = _two_far_clusters()
        n_local = local.shape[0]
        engine = VectorizedEngine()
        wide = engine.detect(combined, EPS, 8)
        narrow = engine.detect(local, EPS, 8)
        expected = brute_force_detect(combined, EPS, 8)
        assert np.array_equal(wide.outlier_mask, expected.outlier_mask)
        assert np.array_equal(wide.core_mask, expected.core_mask)
        # The far copy is geometrically identical, so each half matches
        # the single-cluster run.
        assert np.array_equal(wide.outlier_mask[:n_local], narrow.outlier_mask)
        assert np.array_equal(
            wide.outlier_mask[n_local:], narrow.outlier_mask
        )
