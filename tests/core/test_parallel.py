"""Tests for repro.core.parallel: n_jobs handling, shard planning, and
the shared-memory process pool's exact equivalence to the serial path.
"""

import os

import numpy as np
import pytest

import repro.core.vectorized as vectorized
from repro.core.parallel import (
    normalize_n_jobs,
    plan_shards,
    run_sharded_pair_counts,
)
from repro.core.vectorized import (
    VectorizedEngine,
    _segmented_pair_counts,
)
from repro.exceptions import ParameterError


class TestNormalizeNJobs:
    def test_none_means_serial(self):
        assert normalize_n_jobs(None) == 1

    @pytest.mark.parametrize("n", [1, 2, 7])
    def test_positive_taken_literally(self, n):
        assert normalize_n_jobs(n) == n

    def test_numpy_integer_accepted(self):
        assert normalize_n_jobs(np.int64(3)) == 3

    def test_minus_one_means_all_cores(self):
        assert normalize_n_jobs(-1) == max(1, os.cpu_count() or 1)

    def test_negative_counts_back_from_cpu_count(self):
        cpus = os.cpu_count() or 1
        assert normalize_n_jobs(-2) == max(1, cpus - 1)

    @pytest.mark.parametrize("bad", [0, 1.5, "2", True, False, [1]])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ParameterError):
            normalize_n_jobs(bad)


class TestPlanShards:
    def test_empty(self):
        assert plan_shards(np.empty(0, dtype=np.int64), 4) == []

    def test_single_shard(self):
        assert plan_shards(np.array([3, 1, 2]), 1) == [(0, 3)]

    def test_covers_range_contiguously(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(0, 100, size=37)
        spans = plan_shards(weights, 5)
        assert spans[0][0] == 0
        assert spans[-1][1] == 37
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start
        assert all(end > start for start, end in spans)

    def test_at_most_n_shards_and_at_most_n_items(self):
        weights = np.ones(3, dtype=np.int64)
        assert len(plan_shards(weights, 8)) <= 3
        assert len(plan_shards(np.ones(100), 4)) <= 4

    def test_zero_weights_split_by_count(self):
        spans = plan_shards(np.zeros(10, dtype=np.int64), 2)
        assert spans[0][0] == 0 and spans[-1][1] == 10

    def test_balanced_on_uniform_weights(self):
        spans = plan_shards(np.ones(100, dtype=np.int64), 4)
        sizes = [end - start for start, end in spans]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(0, 50, size=64)
        assert plan_shards(weights, 6) == plan_shards(weights, 6)


def _random_jobs(seed: int, n_points: int = 300, n_cells: int = 12):
    """Synthetic segmented jobs in the engine's flat-CSR form."""
    rng = np.random.default_rng(seed)
    points = rng.normal(0.0, 1.0, size=(n_points, 3))
    m_sizes = rng.integers(1, 9, size=n_cells).astype(np.int64)
    c_sizes = rng.integers(1, 30, size=n_cells).astype(np.int64)
    members = rng.integers(0, n_points, size=int(m_sizes.sum()))
    cands = rng.integers(0, n_points, size=int(c_sizes.sum()))
    return points, members.astype(np.int64), m_sizes, cands.astype(
        np.int64
    ), c_sizes


class TestShardedPairCounts:
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_matches_serial(self, n_jobs):
        points, members, m_sizes, cands, c_sizes = _random_jobs(42)
        counters = {"distance_computations": 0}
        expected = _segmented_pair_counts(
            points, members, m_sizes, cands, c_sizes, 1.5, counters
        )
        counts, n_distances = run_sharded_pair_counts(
            points, members, m_sizes, cands, c_sizes, 1.5, n_jobs
        )
        assert np.array_equal(counts, expected)
        assert n_distances == counters["distance_computations"]

    def test_empty_inputs(self):
        points = np.zeros((0, 2))
        empty = np.empty(0, dtype=np.int64)
        counts, n_distances = run_sharded_pair_counts(
            points, empty, empty, empty, empty, 1.0, 4
        )
        assert counts.shape == (0,)
        assert n_distances == 0

    def test_single_cell_falls_back_to_serial(self):
        points, members, m_sizes, cands, c_sizes = _random_jobs(
            7, n_cells=1
        )
        counters = {"distance_computations": 0}
        expected = _segmented_pair_counts(
            points, members, m_sizes, cands, c_sizes, 2.0, counters
        )
        counts, _ = run_sharded_pair_counts(
            points, members, m_sizes, cands, c_sizes, 2.0, 4
        )
        assert np.array_equal(counts, expected)


class TestEngineNJobs:
    def _dataset(self):
        rng = np.random.default_rng(11)
        return np.vstack(
            [
                rng.normal(0.0, 0.5, size=(400, 2)),
                rng.normal(5.0, 0.7, size=(400, 2)),
                rng.uniform(-8.0, 12.0, size=(80, 2)),
            ]
        )

    def test_n_jobs_two_is_bit_identical(self, monkeypatch):
        # Force the pool even for this small workload.
        monkeypatch.setattr(vectorized, "MIN_PAIRS_FOR_POOL", 0)
        points = self._dataset()
        serial = VectorizedEngine(n_jobs=1).detect(points, 0.6, 10)
        pooled = VectorizedEngine(n_jobs=2).detect(points, 0.6, 10)
        assert np.array_equal(serial.outlier_mask, pooled.outlier_mask)
        assert np.array_equal(serial.core_mask, pooled.core_mask)
        assert (
            serial.stats["distance_computations"]
            == pooled.stats["distance_computations"]
        )
        assert pooled.stats["n_jobs"] == 2

    def test_small_workloads_stay_serial(self):
        # Below MIN_PAIRS_FOR_POOL the pool is never engaged, so
        # n_jobs > 1 on a tiny dataset must not spawn processes (and
        # still yield identical results).
        points = self._dataset()
        serial = VectorizedEngine(n_jobs=1).detect(points, 0.6, 10)
        pooled = VectorizedEngine(n_jobs=4).detect(points, 0.6, 10)
        assert np.array_equal(serial.outlier_mask, pooled.outlier_mask)

    def test_engine_normalizes_n_jobs(self):
        assert VectorizedEngine(n_jobs=None).n_jobs == 1
        assert VectorizedEngine(n_jobs=-1).n_jobs == max(
            1, os.cpu_count() or 1
        )
        with pytest.raises(ParameterError):
            VectorizedEngine(n_jobs=0)
