"""Tests for the k-distance graph and eps elbow estimation."""

import numpy as np
import pytest

from repro.core.parameters import estimate_eps, k_distance_graph
from repro.exceptions import ParameterError


class TestKDistanceGraph:
    def test_descending(self, clustered_2d):
        curve = k_distance_graph(clustered_2d, k=5)
        assert (np.diff(curve) <= 0).all()

    def test_length(self, clustered_2d):
        curve = k_distance_graph(clustered_2d, k=5)
        assert curve.shape == (clustered_2d.shape[0],)

    def test_matches_brute_force(self, rng):
        points = rng.normal(size=(60, 2))
        k = 4
        curve = k_distance_graph(points, k=k)
        diffs = points[:, None, :] - points[None, :, :]
        dists = np.sqrt((diffs**2).sum(axis=2))
        expected = np.sort(np.sort(dists, axis=1)[:, k])[::-1]
        assert np.allclose(curve, expected)

    def test_k_must_be_positive(self, clustered_2d):
        with pytest.raises(ParameterError):
            k_distance_graph(clustered_2d, k=0)

    def test_needs_enough_points(self):
        with pytest.raises(ParameterError):
            k_distance_graph(np.zeros((3, 2)), k=5)

    def test_outliers_dominate_curve_head(self, clustered_2d):
        # The scattered points have the largest k-distances, so the
        # head of the curve is far above the tail.
        curve = k_distance_graph(clustered_2d, k=5)
        assert curve[0] > 5 * curve[-1]


class TestEstimateEps:
    def test_positive(self, clustered_2d):
        assert estimate_eps(clustered_2d, min_pts=5) > 0

    def test_separates_cluster_scale_from_outlier_scale(self, rng):
        cluster = rng.normal(0.0, 0.3, size=(300, 2))
        scatter = rng.uniform(50.0, 100.0, size=(10, 2))
        points = np.vstack([cluster, scatter])
        eps = estimate_eps(points, min_pts=5)
        # The elbow must sit well below the outlier distances (~50+)
        # and above the typical intra-cluster 5-NN distance.
        assert eps < 25.0
        curve = k_distance_graph(points, 5)
        assert eps >= curve[-1]

    def test_detection_with_estimated_eps_finds_planted_outliers(self, rng):
        from repro import DBSCOUT

        cluster = rng.normal(0.0, 0.3, size=(400, 2))
        planted = np.array([[30.0, 30.0], [-40.0, 10.0]])
        points = np.vstack([cluster, planted])
        eps = estimate_eps(points, min_pts=5)
        result = DBSCOUT(eps=eps, min_pts=5).fit(points)
        assert result.outlier_mask[-2:].all()
        # The dense cluster stays mostly inliers.
        assert result.outlier_mask[:-2].mean() < 0.2

    def test_uniform_data_returns_positive_eps(self, rng):
        points = rng.uniform(0, 1, size=(200, 2))
        assert estimate_eps(points, min_pts=4) > 0

    def test_sampled_estimate_close_to_full(self, rng):
        cluster = rng.normal(0.0, 0.3, size=(3000, 2))
        scatter = rng.uniform(30.0, 60.0, size=(30, 2))
        points = np.vstack([cluster, scatter])
        full = estimate_eps(points, min_pts=5)
        sampled = estimate_eps(points, min_pts=5, sample_size=600, seed=1)
        # Sampling thins the density, so the sampled k-distances sit a
        # bit higher; both must stay on the cluster scale, far below
        # the outlier scale (~30+).
        assert 0.5 * full <= sampled <= 5.0 * full
        assert sampled < 10.0

    def test_sample_larger_than_data_is_full(self, rng):
        points = rng.normal(size=(100, 2))
        assert estimate_eps(
            points, min_pts=4, sample_size=10_000
        ) == estimate_eps(points, min_pts=4)

    def test_sample_deterministic_per_seed(self, rng):
        points = rng.normal(size=(500, 2))
        a = estimate_eps(points, min_pts=4, sample_size=100, seed=7)
        b = estimate_eps(points, min_pts=4, sample_size=100, seed=7)
        assert a == b

    def test_sample_size_validation(self, rng):
        points = rng.normal(size=(100, 2))
        with pytest.raises(ParameterError):
            estimate_eps(points, min_pts=5, sample_size=5)

    def test_invalid_upper(self, rng):
        points = rng.normal(size=(50, 2))
        with pytest.raises(ParameterError):
            estimate_eps(points, min_pts=4, upper=0.0)

    def test_duplicate_heavy_data(self):
        points = np.vstack(
            [np.tile([[0.0, 0.0]], (50, 1)), [[5.0, 5.0]], [[9.0, 1.0]]]
        )
        eps = estimate_eps(points, min_pts=3)
        assert eps > 0


class TestEstimateEpsDegenerateUpper:
    """The ``upper`` factor must survive every degenerate-curve path.

    Regression tests: the short-curve and flat-curve fallbacks used to
    return the raw fallback value, silently dropping the caller's
    safety factor while the elbow path applied it.
    """

    def test_flat_curve_applies_upper(self):
        # Evenly spaced collinear points: every k-distance is equal, so
        # the curve is flat and the knee rule cannot fire.
        points = np.arange(20.0)[:, None] * np.array([[1.0, 0.0]])
        base = estimate_eps(points, min_pts=1, upper=1.0)
        assert base > 0
        assert estimate_eps(points, min_pts=1, upper=2.0) == pytest.approx(
            2.0 * base
        )

    def test_short_curve_applies_upper(self):
        # Two points: the curve has a single value, below the 3-point
        # minimum the knee rule needs.
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert estimate_eps(points, min_pts=1, upper=1.0) == pytest.approx(
            5.0
        )
        assert estimate_eps(points, min_pts=1, upper=2.0) == pytest.approx(
            10.0
        )

    def test_all_duplicates_still_positive_and_scaled(self):
        # Identical points: flat curve at distance zero; the fallback
        # substitutes 1.0 for the nonpositive base, scaled by upper.
        points = np.tile([[2.0, 2.0]], (10, 1))
        assert estimate_eps(points, min_pts=2, upper=1.0) == pytest.approx(
            1.0
        )
        assert estimate_eps(points, min_pts=2, upper=1.5) == pytest.approx(
            1.5
        )

    def test_upper_scales_elbow_path_too(self, rng):
        # Sanity: the non-degenerate path already scaled by upper; the
        # fix must keep all paths consistent.
        cluster = rng.normal(0.0, 0.3, size=(300, 2))
        scatter = rng.uniform(50.0, 100.0, size=(10, 2))
        points = np.vstack([cluster, scatter])
        one = estimate_eps(points, min_pts=5, upper=1.0)
        two = estimate_eps(points, min_pts=5, upper=2.0)
        assert two == pytest.approx(2.0 * one)
