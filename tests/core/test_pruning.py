"""Tests for the cell-geometry pruning layer of the vectorized engine.

Pruning (bounding-box covered/excluded classification plus covered-cell
settling) must be invisible in the results: every mask bit identical to
the unpruned path and to the brute-force reference, while the stats
counters show work actually being skipped.
"""

import numpy as np
import pytest

from repro.core.reference import brute_force_detect
from repro.core.vectorized import (
    VectorizedEngine,
    _cell_bounds,
    _classify_cell_pairs,
    _masked_cell_bounds,
)
from repro.core.grid import Grid


#: min_pts for the clumped-grid workload below: each cell alone is NOT
#: dense (5 points), so the Lemma-1 shortcut never fires and the work
#: must be resolved by neighborhood counting — which pruning covers.
CLUMP_MIN_PTS = 15


def _clumped_grid(seed: int = 3) -> np.ndarray:
    """Tiny 5-point clumps at the centers of an 8x8 block of adjacent
    cells (eps=1).  Per-cell bounding boxes are nearly points, so the
    axis-neighbor cell pairs are fully covered: their maximum possible
    distance is ~ the cell side (0.707) < eps."""
    rng = np.random.default_rng(seed)
    side = 1.0 / np.sqrt(2.0)  # cell side for eps=1, d=2
    clumps = []
    for i in range(8):
        for j in range(8):
            center = np.array([(i + 0.5) * side, (j + 0.5) * side])
            clumps.append(center + rng.normal(0.0, 0.005, size=(5, 2)))
    return np.vstack(clumps)


class TestParity:
    """Pruning on == pruning off == brute force, bit for bit."""

    @pytest.mark.parametrize("n_dims", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("eps,min_pts", [(0.6, 4), (1.1, 8)])
    def test_random_parity_vs_reference(self, n_dims, eps, min_pts):
        rng = np.random.default_rng(100 + n_dims)
        points = np.vstack(
            [
                rng.normal(0.0, 0.4, size=(120, n_dims)),
                rng.normal(4.0, 0.6, size=(120, n_dims)),
                rng.uniform(-6.0, 10.0, size=(40, n_dims)),
            ]
        )
        pruned = VectorizedEngine(pruning=True).detect(points, eps, min_pts)
        plain = VectorizedEngine(pruning=False).detect(points, eps, min_pts)
        expected = brute_force_detect(points, eps, min_pts)
        assert np.array_equal(pruned.outlier_mask, plain.outlier_mask)
        assert np.array_equal(pruned.core_mask, plain.core_mask)
        assert np.array_equal(pruned.outlier_mask, expected.outlier_mask)
        assert np.array_equal(pruned.core_mask, expected.core_mask)

    def test_clustered_fixture_parity(self, clustered_2d):
        pruned = VectorizedEngine(pruning=True).detect(clustered_2d, 0.5, 10)
        plain = VectorizedEngine(pruning=False).detect(clustered_2d, 0.5, 10)
        assert np.array_equal(pruned.outlier_mask, plain.outlier_mask)
        assert np.array_equal(pruned.core_mask, plain.core_mask)

    def test_degenerate_duplicate_points(self):
        # All points identical: one cell, zero-size bounding box, the
        # self pair is covered by Lemma 1 and settling fires.
        points = np.zeros((50, 3))
        pruned = VectorizedEngine(pruning=True).detect(points, 1.0, 10)
        plain = VectorizedEngine(pruning=False).detect(points, 1.0, 10)
        assert np.array_equal(pruned.outlier_mask, plain.outlier_mask)
        assert pruned.n_outliers == 0
        assert pruned.n_core_points == 50


class TestCounters:
    def test_covered_pairs_skipped_on_clumped_grid(self):
        result = VectorizedEngine(pruning=True).detect(
            _clumped_grid(), 1.0, CLUMP_MIN_PTS
        )
        assert result.stats["pairs_skipped_covered"] > 0
        assert result.stats["cells_settled_covered"] > 0
        assert result.stats["pruning"] is True

    def test_clumped_grid_parity(self):
        points = _clumped_grid()
        pruned = VectorizedEngine(pruning=True).detect(
            points, 1.0, CLUMP_MIN_PTS
        )
        expected = brute_force_detect(points, 1.0, CLUMP_MIN_PTS)
        assert np.array_equal(pruned.outlier_mask, expected.outlier_mask)
        assert np.array_equal(pruned.core_mask, expected.core_mask)

    def test_pruning_reduces_distance_computations(self):
        points = _clumped_grid()
        pruned = VectorizedEngine(pruning=True).detect(
            points, 1.0, CLUMP_MIN_PTS
        )
        plain = VectorizedEngine(pruning=False).detect(
            points, 1.0, CLUMP_MIN_PTS
        )
        assert (
            pruned.stats["distance_computations"]
            < plain.stats["distance_computations"]
        )

    def test_counters_zero_when_pruning_off(self):
        result = VectorizedEngine(pruning=False).detect(
            _clumped_grid(), 1.0, CLUMP_MIN_PTS
        )
        assert result.stats["pairs_skipped_covered"] == 0
        assert result.stats["pairs_skipped_excluded"] == 0
        assert result.stats["cells_settled_covered"] == 0
        assert result.stats["pruning"] is False

    def test_excluded_pairs_on_spread_data(self):
        # Two small (non-dense) clumps in diagonal-neighbor cells whose
        # occupied corners are farther than eps apart: the cells are
        # stencil neighbors, but the bounding-box minimum distance
        # proves no pair can be within eps.
        rng = np.random.default_rng(9)
        points = np.vstack(
            [
                rng.uniform(0.0, 0.05, size=(5, 2)),
                rng.uniform(1.36, 1.41, size=(5, 2)),
            ]
        )
        result = VectorizedEngine(pruning=True).detect(points, 1.0, 10)
        assert result.stats["pairs_skipped_excluded"] > 0


class TestClassification:
    """Unit checks of the bounding-box classification itself."""

    def test_self_pair_always_covered(self):
        rng = np.random.default_rng(5)
        grid = Grid(rng.uniform(0.0, 3.0, size=(200, 2)), eps=1.0)
        bounds = _cell_bounds(grid)
        idx = np.arange(grid.n_cells, dtype=np.int64)
        covered, excluded = _classify_cell_pairs(
            bounds, bounds, idx, idx, 1.0
        )
        assert covered.all()
        assert not excluded.any()

    def test_covered_and_excluded_disjoint(self):
        rng = np.random.default_rng(6)
        grid = Grid(rng.normal(0.0, 1.0, size=(400, 2)), eps=0.7)
        bounds = _cell_bounds(grid)
        work = np.repeat(np.arange(grid.n_cells, dtype=np.int64), grid.n_cells)
        cand = np.tile(np.arange(grid.n_cells, dtype=np.int64), grid.n_cells)
        covered, excluded = _classify_cell_pairs(
            bounds, bounds, work, cand, 0.7**2
        )
        assert not (covered & excluded).any()

    def test_classification_is_sound(self):
        # Covered pairs: every cross-cell distance <= eps.  Excluded
        # pairs: every cross-cell distance > eps.  Checked exhaustively
        # against the actual point pairs.
        rng = np.random.default_rng(7)
        eps = 1.0
        grid = Grid(rng.uniform(0.0, 2.5, size=(300, 2)), eps=eps)
        bounds = _cell_bounds(grid)
        n = grid.n_cells
        work = np.repeat(np.arange(n, dtype=np.int64), n)
        cand = np.tile(np.arange(n, dtype=np.int64), n)
        covered, excluded = _classify_cell_pairs(
            bounds, bounds, work, cand, eps * eps
        )
        for w, c, cov, exc in zip(work, cand, covered, excluded):
            a = grid.points[grid.cell_members(w)]
            b = grid.points[grid.cell_members(c)]
            d_sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
            if cov:
                assert (d_sq <= eps * eps).all()
            if exc:
                assert (d_sq > eps * eps).all()

    def test_masked_bounds_cover_only_masked_points(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(0.0, 3.0, size=(150, 2))
        grid = Grid(points, eps=1.0)
        mask = np.zeros(points.shape[0], dtype=bool)
        mask[::3] = True
        lo, hi = _masked_cell_bounds(grid, mask)
        for i in range(grid.n_cells):
            members = grid.cell_members(i)
            masked = members[mask[members]]
            if masked.shape[0] == 0:
                assert (lo[i] > hi[i]).all()
            else:
                assert np.array_equal(lo[i], points[masked].min(axis=0))
                assert np.array_equal(hi[i], points[masked].max(axis=0))
