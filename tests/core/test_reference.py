"""Tests for the brute-force reference implementation itself."""

import numpy as np
import pytest

from repro.core.reference import brute_force_core_mask, brute_force_detect
from repro.exceptions import ParameterError


class TestCoreMask:
    def test_counts_include_self(self):
        # A single point with min_pts=1 is core (it neighbors itself).
        assert brute_force_core_mask(np.array([[0.0, 0.0]]), 1.0, 1).all()

    def test_hand_computed_line(self):
        # Points on a line at unit spacing; eps=1, min_pts=3.
        # Interior points have 3 neighbors (self + 2), endpoints only 2.
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        mask = brute_force_core_mask(points, 1.0, 3)
        assert mask.tolist() == [False, True, True, False]

    def test_boundary_inclusive(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert brute_force_core_mask(points, 1.0, 2).all()

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            brute_force_core_mask(np.zeros((2, 2)), 0.0, 1)


class TestDetect:
    def test_outlier_needs_no_core_within_eps(self):
        # Dense quad + a border point within eps of two cores (but with
        # only 3 eps-neighbors itself) + one far point.
        points = np.array(
            [
                [0.0, 0.0],
                [0.1, 0.0],
                [0.0, 0.1],
                [0.1, 0.1],  # dense quad: all core with min_pts=4
                [1.05, 0.0],  # 3 neighbors only: border, not outlier
                [5.0, 5.0],  # far: outlier
            ]
        )
        result = brute_force_detect(points, 1.0, 4)
        assert result.core_mask.tolist() == [
            True,
            True,
            True,
            True,
            False,
            False,
        ]
        assert result.outlier_mask.tolist() == [
            False,
            False,
            False,
            False,
            False,
            True,
        ]

    def test_border_point_at_exactly_eps_not_outlier(self):
        # Definition 3: outlier iff dist > eps from ALL cores, so a
        # point at exactly eps of a core point is not an outlier.
        points = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [1.0, 0.0]]
        )
        result = brute_force_detect(points, 1.0, 3)
        assert result.core_mask[0]
        assert not result.outlier_mask[3]

    def test_no_cores_all_outliers(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        result = brute_force_detect(points, 1.0, 2)
        assert result.outlier_mask.all()

    def test_empty(self):
        result = brute_force_detect(np.zeros((0, 3)), 1.0, 2)
        assert result.n_points == 0
