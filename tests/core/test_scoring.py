"""Tests for the nearest-core-distance scoring extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.reference import brute_force_core_mask
from repro.core.scoring import detect_with_scores, nearest_core_distance
from repro.core.vectorized import detect


def brute_scores(points, eps, min_pts):
    """Reference: distance to nearest core, censored beyond the stencil."""
    core = brute_force_core_mask(points, eps, min_pts)
    diffs = points[:, None, :] - points[None, :, :]
    dists = np.sqrt((diffs**2).sum(axis=2))
    scores = np.full(points.shape[0], np.inf)
    scores[core] = 0.0
    if core.any():
        nearest = dists[:, core].min(axis=1)
        scores[~core] = nearest[~core]
    return scores, core


class TestScores:
    def test_core_points_score_zero(self, clustered_2d):
        scores = nearest_core_distance(clustered_2d, 0.8, 8)
        result = detect(clustered_2d, 0.8, 8)
        assert (scores[result.core_mask] == 0.0).all()
        assert (scores[~result.core_mask] > 0.0).all()

    def test_threshold_recovers_detector_exactly(self, clustered_2d):
        for eps, min_pts in ((0.5, 5), (0.8, 8), (1.5, 12)):
            scores = nearest_core_distance(clustered_2d, eps, min_pts)
            result = detect(clustered_2d, eps, min_pts)
            assert np.array_equal(scores > eps, result.outlier_mask)

    def test_matches_brute_force_within_stencil(self, clustered_2d):
        eps, min_pts = 0.8, 8
        scores = nearest_core_distance(clustered_2d, eps, min_pts)
        expected, _ = brute_scores(clustered_2d, eps, min_pts)
        # Where the stencil covers the nearest core, the value is exact;
        # beyond it the score is censored to inf (by design).
        finite = np.isfinite(scores)
        assert np.allclose(scores[finite], expected[finite])
        # Censoring only ever happens beyond eps, so inside the eps
        # band the values are always exact.
        near = expected <= eps
        assert np.isfinite(scores[near]).all()
        assert np.allclose(scores[near], expected[near])

    def test_no_cores_all_inf(self, rng):
        points = rng.uniform(-100, 100, size=(30, 2))
        scores = nearest_core_distance(points, 0.01, 5)
        assert np.isinf(scores).all()

    def test_ranking_separates_planted_outliers(self, rng):
        cluster = rng.normal(0.0, 0.4, size=(300, 2))
        planted = rng.uniform(5.0, 8.0, size=(10, 2))
        points = np.vstack([cluster, planted])
        scores = nearest_core_distance(points, 0.8, 8)
        from repro.metrics import roc_auc_score

        labels = np.concatenate([np.zeros(300), np.ones(10)])
        finite = np.where(np.isinf(scores), 1e18, scores)
        assert roc_auc_score(labels, finite) > 0.99

    def test_empty(self):
        assert nearest_core_distance(np.zeros((0, 2)), 1.0, 3).shape == (0,)


class TestDetectWithScores:
    def test_consistent_with_plain_detector(self, clustered_2d):
        with_scores = detect_with_scores(clustered_2d, 0.8, 8)
        plain = detect(clustered_2d, 0.8, 8)
        assert np.array_equal(
            with_scores.outlier_mask, plain.outlier_mask
        )
        assert np.array_equal(with_scores.core_mask, plain.core_mask)
        assert with_scores.scores is not None


coords = st.integers(min_value=-200, max_value=200).map(lambda k: k / 8.0)


@settings(max_examples=50, deadline=None)
@given(
    points=st.integers(min_value=1, max_value=50).flatmap(
        lambda n: arrays(np.float64, (n, 2), elements=coords)
    ),
    eps_k=st.integers(min_value=1, max_value=120),
    min_pts=st.integers(min_value=1, max_value=6),
)
def test_threshold_equivalence_property(points, eps_k, min_pts):
    eps = eps_k / 8.0
    scores = nearest_core_distance(points, eps, min_pts)
    result = detect(points, eps, min_pts)
    assert np.array_equal(scores > eps, result.outlier_mask)
    assert np.array_equal(scores == 0.0, result.core_mask)
