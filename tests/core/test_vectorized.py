"""Tests for the vectorized DBSCOUT engine."""

import math

import numpy as np
import pytest

from repro.core.reference import brute_force_detect
from repro.core.vectorized import VectorizedEngine, detect
from repro.exceptions import DataValidationError, ParameterError


@pytest.fixture
def engine() -> VectorizedEngine:
    return VectorizedEngine()


class TestAgainstBruteForce:
    @pytest.mark.parametrize("eps,min_pts", [(0.5, 5), (1.0, 10), (2.0, 3)])
    def test_2d(self, engine, clustered_2d, eps, min_pts):
        expected = brute_force_detect(clustered_2d, eps, min_pts)
        actual = engine.detect(clustered_2d, eps, min_pts)
        assert np.array_equal(actual.outlier_mask, expected.outlier_mask)
        assert np.array_equal(actual.core_mask, expected.core_mask)

    @pytest.mark.parametrize("eps,min_pts", [(0.8, 5), (1.5, 20)])
    def test_3d(self, engine, clustered_3d, eps, min_pts):
        expected = brute_force_detect(clustered_3d, eps, min_pts)
        actual = engine.detect(clustered_3d, eps, min_pts)
        assert np.array_equal(actual.outlier_mask, expected.outlier_mask)
        assert np.array_equal(actual.core_mask, expected.core_mask)

    def test_1d(self, engine, rng):
        points = np.sort(rng.normal(size=100))[:, None]
        expected = brute_force_detect(points, 0.2, 4)
        actual = engine.detect(points, 0.2, 4)
        assert np.array_equal(actual.outlier_mask, expected.outlier_mask)

    def test_4d(self, engine, rng):
        points = np.vstack(
            [rng.normal(0, 0.5, (150, 4)), rng.uniform(-6, 6, (20, 4))]
        )
        expected = brute_force_detect(points, 1.2, 8)
        actual = engine.detect(points, 1.2, 8)
        assert np.array_equal(actual.outlier_mask, expected.outlier_mask)
        assert np.array_equal(actual.core_mask, expected.core_mask)


class TestLemmas:
    def test_lemma1_dense_cell_points_are_core(self, engine, clustered_2d):
        from repro.core.grid import Grid

        eps, min_pts = 0.8, 10
        result = engine.detect(clustered_2d, eps, min_pts)
        grid = Grid(clustered_2d, eps)
        for cell_index in np.flatnonzero(grid.counts >= min_pts):
            members = grid.cell_members(cell_index)
            assert result.core_mask[members].all()

    def test_lemma2_core_cell_points_not_outliers(self, engine, clustered_2d):
        from repro.core.grid import Grid

        eps, min_pts = 0.8, 10
        result = engine.detect(clustered_2d, eps, min_pts)
        grid = Grid(clustered_2d, eps)
        for cell_index in range(grid.n_cells):
            members = grid.cell_members(cell_index)
            if result.core_mask[members].any():
                assert not result.outlier_mask[members].any()

    def test_core_points_are_never_outliers(self, engine, clustered_2d):
        result = engine.detect(clustered_2d, 0.8, 10)
        assert not (result.core_mask & result.outlier_mask).any()


class TestEdgeCases:
    def test_empty_input(self, engine):
        result = engine.detect(np.zeros((0, 2)), 1.0, 5)
        assert result.n_points == 0
        assert result.outlier_mask.shape == (0,)

    def test_single_point_min_pts_1(self, engine):
        result = engine.detect(np.array([[0.0, 0.0]]), 1.0, 1)
        assert result.core_mask.tolist() == [True]
        assert result.outlier_mask.tolist() == [False]

    def test_single_point_min_pts_2(self, engine):
        result = engine.detect(np.array([[0.0, 0.0]]), 1.0, 2)
        assert result.core_mask.tolist() == [False]
        assert result.outlier_mask.tolist() == [True]

    def test_min_pts_one_means_no_outliers(self, engine, clustered_2d):
        # Every point has itself in its eps-ball, so all are core.
        result = engine.detect(clustered_2d, 0.5, 1)
        assert result.core_mask.all()
        assert not result.outlier_mask.any()

    def test_all_duplicates(self, engine):
        points = np.tile([[2.0, 3.0]], (10, 1))
        result = engine.detect(points, 0.5, 10)
        assert result.core_mask.all()
        assert not result.outlier_mask.any()

    def test_two_far_points(self, engine):
        points = np.array([[0.0, 0.0], [100.0, 100.0]])
        result = engine.detect(points, 1.0, 2)
        assert result.outlier_mask.all()

    def test_pair_exactly_at_eps(self, engine):
        # Definition 2 uses <= eps: two points at exactly eps with
        # min_pts=2 are both core, hence no outliers.
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        result = engine.detect(points, 1.0, 2)
        expected = brute_force_detect(points, 1.0, 2)
        assert np.array_equal(result.core_mask, expected.core_mask)
        assert result.core_mask.all()
        assert not result.outlier_mask.any()

    def test_pair_just_beyond_eps(self, engine):
        points = np.array([[0.0, 0.0], [1.0 + 1e-9, 0.0]])
        result = engine.detect(points, 1.0, 2)
        assert result.outlier_mask.all()

    def test_cross_cell_boundary_pair(self, engine):
        # Points in different cells but within eps must see each other.
        eps = 1.0
        side = eps / math.sqrt(2.0)
        points = np.array([[side - 1e-6, 0.1], [side + 1e-6, 0.1]])
        result = engine.detect(points, eps, 2)
        assert result.core_mask.all()

    def test_invalid_parameters(self, engine, clustered_2d):
        with pytest.raises(ParameterError):
            engine.detect(clustered_2d, -1.0, 5)
        with pytest.raises(ParameterError):
            engine.detect(clustered_2d, 1.0, 0)
        with pytest.raises(ParameterError):
            engine.detect(clustered_2d, 1.0, 2.5)

    def test_invalid_points(self, engine):
        with pytest.raises(DataValidationError):
            engine.detect(np.array([[np.nan, 0.0]]), 1.0, 5)


class TestResultMetadata:
    def test_timings_present(self, clustered_2d):
        result = detect(clustered_2d, 0.8, 10)
        assert result.timings is not None
        assert set(result.timings.phases) == {
            "grid",
            "dense_cell_map",
            "core_points",
            "core_cell_map",
            "outliers",
        }
        assert result.timings.total > 0

    def test_stats_present(self, clustered_2d):
        result = detect(clustered_2d, 0.8, 10)
        assert result.stats["engine"] == "vectorized"
        assert result.stats["k_d"] == 25  # boundary-inclusive stencil
        assert result.stats["n_cells"] > 0
        assert result.stats["n_core_cells"] <= result.stats["n_cells"]

    def test_large_coordinates_fallback_path(self):
        # Huge spread forces the dict-based adjacency fallback: the
        # cell span (~2**47 cells per dim) overflows the 62-bit packer
        # while staying inside the exact grid domain (< 2**52 cells).
        rng = np.random.default_rng(3)
        points = np.vstack(
            [
                rng.normal(0.0, 1e-4, (50, 2)),
                rng.normal(1e11, 1e-4, (50, 2)),
                np.array([[5e10, 5e10]]),
            ]
        )
        result = detect(points, 1e-3, 10)
        expected = brute_force_detect(points, 1e-3, 10)
        assert np.array_equal(result.outlier_mask, expected.outlier_mask)

    def test_out_of_domain_coordinates_rejected(self):
        # Beyond 2**52 cells float division cannot resolve cell
        # coordinates; every path rejects uniformly.
        points = np.array([[1e15, 0.0], [0.0, 0.0]])
        with pytest.raises(DataValidationError):
            detect(points, 1e-3, 2)


class TestEpsMonotonicity:
    def test_larger_eps_fewer_or_equal_outliers(self, clustered_2d):
        counts = [
            detect(clustered_2d, eps, 10).n_outliers
            for eps in (0.3, 0.6, 1.2, 2.4)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_larger_min_pts_more_or_equal_outliers(self, clustered_2d):
        counts = [
            detect(clustered_2d, 0.8, min_pts).n_outliers
            for min_pts in (2, 5, 10, 20)
        ]
        assert counts == sorted(counts)
