"""Unit tests for the vectorized engine's flat-batch helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import Grid
from repro.core.neighbors import NeighborStencil
from repro.core.vectorized import (
    _CellAdjacency,
    _flat_ranges,
    _gather_cell_jobs,
    _segment_sums,
    _segmented_pair_counts,
)


class TestFlatRanges:
    def test_basic(self):
        out = _flat_ranges(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_empty_runs_skipped(self):
        out = _flat_ranges(np.array([5, 7, 9]), np.array([2, 0, 1]))
        assert out.tolist() == [5, 6, 9]

    def test_all_empty(self):
        assert _flat_ranges(np.array([1, 2]), np.array([0, 0])).size == 0

    def test_no_runs(self):
        assert _flat_ranges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ).size == 0

    @settings(max_examples=50, deadline=None)
    @given(
        runs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=20,
        )
    )
    def test_matches_python_loop(self, runs):
        starts = np.array([s for s, _ in runs], dtype=np.int64)
        lengths = np.array([l for _, l in runs], dtype=np.int64)
        expected = [x for s, l in runs for x in range(s, s + l)]
        assert _flat_ranges(starts, lengths).tolist() == expected


class TestSegmentSums:
    def test_basic(self):
        values = np.array([1, 2, 3, 4, 5])
        assert _segment_sums(values, np.array([2, 3])).tolist() == [3, 12]

    def test_empty_segments_are_zero(self):
        values = np.array([1, 2, 3])
        out = _segment_sums(values, np.array([0, 2, 0, 1]))
        assert out.tolist() == [0, 3, 0, 3]

    @settings(max_examples=50, deadline=None)
    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=6), max_size=15)
    )
    def test_matches_python_loop(self, lengths):
        rng = np.random.default_rng(0)
        total = sum(lengths)
        values = rng.integers(-5, 5, size=total)
        out = _segment_sums(values, np.array(lengths, dtype=np.int64))
        cursor = 0
        for index, length in enumerate(lengths):
            assert out[index] == values[cursor : cursor + length].sum()
            cursor += length


class TestGatherAndCount:
    def test_counts_match_per_cell_reference(self, clustered_2d):
        eps, min_pts = 0.8, 8
        grid = Grid(clustered_2d, eps)
        stencil = NeighborStencil(2)
        adjacency = _CellAdjacency(grid, stencil)
        work = np.arange(grid.n_cells)
        members, m_sizes, cands, c_sizes = _gather_cell_jobs(
            grid, adjacency, work, None, None
        )
        counters = {"distance_computations": 0}
        counts = _segmented_pair_counts(
            clustered_2d, members, m_sizes, cands, c_sizes, eps * eps,
            counters,
        )
        # Reference: per-cell loop with einsum.
        cursor = 0
        for cell_index in work:
            cell_members = grid.cell_members(cell_index)
            neighbor_cells = adjacency.neighbors(cell_index)
            candidates = np.concatenate(
                [grid.cell_members(nc) for nc in neighbor_cells]
            )
            diffs = (
                clustered_2d[cell_members][:, None, :]
                - clustered_2d[candidates][None, :, :]
            )
            sq = np.einsum("ijk,ijk->ij", diffs, diffs)
            expected = (sq <= eps * eps).sum(axis=1)
            got = counts[cursor : cursor + cell_members.size]
            member_slice = members[cursor : cursor + cell_members.size]
            assert np.array_equal(member_slice, cell_members)
            assert np.array_equal(got, expected)
            cursor += cell_members.size

    def test_tiny_pair_budget_still_exact(self, clustered_2d):
        eps = 0.8
        grid = Grid(clustered_2d, eps)
        stencil = NeighborStencil(2)
        adjacency = _CellAdjacency(grid, stencil)
        work = np.arange(grid.n_cells)
        members, m_sizes, cands, c_sizes = _gather_cell_jobs(
            grid, adjacency, work, None, None
        )
        counters = {"distance_computations": 0}
        small = _segmented_pair_counts(
            clustered_2d, members, m_sizes, cands, c_sizes, eps * eps,
            counters, pair_budget=7,
        )
        counters2 = {"distance_computations": 0}
        large = _segmented_pair_counts(
            clustered_2d, members, m_sizes, cands, c_sizes, eps * eps,
            counters2, pair_budget=10**9,
        )
        assert np.array_equal(small, large)
        assert (
            counters["distance_computations"]
            == counters2["distance_computations"]
        )

    def test_candidate_masks_applied(self, clustered_2d):
        from repro.core.vectorized import detect

        eps, min_pts = 0.8, 8
        result = detect(clustered_2d, eps, min_pts)
        grid = Grid(clustered_2d, eps)
        stencil = NeighborStencil(2)
        adjacency = _CellAdjacency(grid, stencil)
        cell_is_core = np.zeros(grid.n_cells, dtype=bool)
        cell_is_core[np.unique(grid.point_cell[result.core_mask])] = True
        work = np.flatnonzero(~cell_is_core)
        members, m_sizes, cands, c_sizes = _gather_cell_jobs(
            grid,
            adjacency,
            work,
            candidate_cell_mask=cell_is_core,
            candidate_point_mask=result.core_mask,
        )
        # Every surviving candidate is a core point.
        assert result.core_mask[cands].all()
        assert m_sizes.sum() == members.size
        assert c_sizes.sum() == cands.size

    def test_empty_work_set(self, clustered_2d):
        grid = Grid(clustered_2d, 0.8)
        stencil = NeighborStencil(2)
        adjacency = _CellAdjacency(grid, stencil)
        members, m_sizes, cands, c_sizes = _gather_cell_jobs(
            grid, adjacency, np.empty(0, dtype=np.int64), None, None
        )
        assert members.size == 0 and cands.size == 0
        counters = {"distance_computations": 0}
        counts = _segmented_pair_counts(
            clustered_2d, members, m_sizes, cands, c_sizes, 1.0, counters
        )
        assert counts.size == 0
