"""Tests for the CLUTO/CURE-style shape dataset generators."""

import numpy as np
import pytest

from repro.datasets.cluto import (
    make_cluto_t4,
    make_cluto_t5,
    make_cluto_t7,
    make_cluto_t8,
    make_cure_t2,
)

#: maker -> (default size, paper contamination rate nu)
EXPECTED = {
    make_cluto_t4: (8000, 0.10),
    make_cluto_t5: (8000, 0.15),
    make_cluto_t7: (10000, 0.08),
    make_cluto_t8: (8000, 0.04),
    make_cure_t2: (4000, 0.05),
}


class TestContract:
    @pytest.mark.parametrize("maker", list(EXPECTED))
    def test_default_sizes(self, maker):
        size, _nu = EXPECTED[maker]
        ds = maker()
        assert abs(ds.n_points - size) <= size * 0.02

    @pytest.mark.parametrize("maker", list(EXPECTED))
    def test_contamination_matches_paper(self, maker):
        _size, nu = EXPECTED[maker]
        ds = maker()
        assert ds.contamination == pytest.approx(nu, rel=0.1)

    @pytest.mark.parametrize("maker", list(EXPECTED))
    def test_two_dimensional(self, maker):
        assert maker().points.shape[1] == 2

    @pytest.mark.parametrize("maker", list(EXPECTED))
    def test_deterministic(self, maker):
        assert np.array_equal(maker().points, maker().points)

    @pytest.mark.parametrize("maker", list(EXPECTED))
    def test_noise_is_sparse(self, maker):
        # Density-based separability: the labelled noise must have a
        # larger 5-NN distance than the structured inliers, otherwise
        # the Table III ground truth would be unusable.
        from scipy.spatial import cKDTree

        ds = maker()
        tree = cKDTree(ds.points)
        gaps = tree.query(ds.points, k=6)[0][:, 5]
        noise_gap = np.median(gaps[ds.outlier_labels == 1])
        inlier_gap = np.median(gaps[ds.outlier_labels == 0])
        assert noise_gap > 2 * inlier_gap


class TestDetectability:
    def test_dbscout_separates_t4_noise_well(self):
        from repro import DBSCOUT, estimate_eps
        from repro.metrics import f1_score

        ds = make_cluto_t4(n_points=3000, seed=4)
        eps = estimate_eps(ds.points, 10)
        result = DBSCOUT(eps=eps, min_pts=10).fit(ds.points)
        assert f1_score(ds.outlier_labels, result.outlier_mask) > 0.6
