"""Tests for the geospatial simulators and the scaling utilities."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.datasets.geospatial import (
    enlarge_with_jitter,
    make_geolife_like,
    make_openstreetmap_like,
    sample_fraction,
)
from repro.exceptions import ParameterError


class TestGeolifeLike:
    def test_shape(self):
        points = make_geolife_like(5000, seed=0)
        assert points.shape == (5000, 3)

    def test_deterministic(self):
        assert np.array_equal(
            make_geolife_like(1000, seed=7), make_geolife_like(1000, seed=7)
        )

    def test_heavy_skew_like_the_paper(self):
        # The paper reports that with eps = 200, ~40% of Geolife's
        # points land in the single most populous cell.  Depending on
        # how the grid happens to cut the downtown core, the top cell
        # holds 10-40% here; either way the skew is extreme (uniform
        # data would put ~0.01% in the top cell) and the top handful
        # of cells dominate.
        points = make_geolife_like(30000, seed=1)
        grid = Grid(points, eps=200.0)
        top_share = grid.counts.max() / grid.n_points
        assert 0.05 < top_share < 0.70
        top10_share = np.sort(grid.counts)[-10:].sum() / grid.n_points
        assert top10_share > 0.30

    def test_has_worldwide_scatter(self):
        points = make_geolife_like(20000, seed=2)
        spread = np.abs(points[:, :2]).max()
        assert spread > 1.0e5  # far beyond the hotspot

    def test_fraction_validation(self):
        with pytest.raises(ParameterError):
            make_geolife_like(100, hotspot_fraction=1.5)
        with pytest.raises(ParameterError):
            make_geolife_like(100, hotspot_fraction=0.9, track_fraction=0.5)


class TestOpenStreetMapLike:
    def test_shape(self):
        points = make_openstreetmap_like(5000, seed=0)
        assert points.shape == (5000, 2)

    def test_world_bounds(self):
        points = make_openstreetmap_like(20000, seed=1)
        # Scaled-degree units: almost everything within the world box
        # (city Gaussian tails may poke slightly past the coastline).
        assert np.percentile(np.abs(points[:, 0]), 99) <= 1.9e9
        assert np.percentile(np.abs(points[:, 1]), 99) <= 0.95e9

    def test_city_structure_dominates(self):
        points = make_openstreetmap_like(
            20000, seed=2, background_fraction=0.01
        )
        grid = Grid(points, eps=1.0e6)
        # City clustering concentrates mass: uniform world-scale data
        # would land almost every point in its own cell, while cities
        # pack many points per cell and skew the population heavily.
        assert grid.n_cells < 0.5 * points.shape[0]
        assert grid.counts.max() > 10 * np.median(grid.counts)

    def test_background_fraction_zero(self):
        points = make_openstreetmap_like(
            2000, seed=3, background_fraction=0.0
        )
        assert points.shape == (2000, 2)

    def test_validation(self):
        with pytest.raises(ParameterError):
            make_openstreetmap_like(100, n_cities=0)
        with pytest.raises(ParameterError):
            make_openstreetmap_like(100, background_fraction=2.0)


class TestGeolifeLabeled:
    def test_shapes_and_labels(self):
        from repro.datasets import make_geolife_like_labeled

        ds = make_geolife_like_labeled(5000, anomaly_fraction=0.02, seed=4)
        assert ds.points.shape == (5000, 3)
        assert ds.n_outliers == 100
        assert ds.contamination == pytest.approx(0.02)

    def test_anomalies_respect_clearance(self):
        from scipy.spatial import cKDTree

        from repro.datasets import make_geolife_like_labeled

        ds = make_geolife_like_labeled(4000, seed=5)
        inliers = ds.points[ds.outlier_labels == 0]
        anomalies = ds.points[ds.outlier_labels == 1]
        gaps = cKDTree(inliers).query(anomalies, k=1)[0]
        assert gaps.min() >= 5_000.0

    def test_invalid_fraction(self):
        from repro.datasets import make_geolife_like_labeled

        with pytest.raises(ParameterError):
            make_geolife_like_labeled(100, anomaly_fraction=0.9)

    def test_detectable_by_dbscout(self):
        from repro import DBSCOUT, estimate_eps
        from repro.datasets import make_geolife_like_labeled
        from repro.metrics import f1_score

        ds = make_geolife_like_labeled(6000, seed=2)
        eps = estimate_eps(ds.points, 10, sample_size=2000)
        result = DBSCOUT(eps=eps, min_pts=10).fit(ds.points)
        assert f1_score(ds.outlier_labels, result.outlier_mask) > 0.6


class TestScalingUtilities:
    def test_enlarge_size(self, rng):
        base = rng.normal(size=(100, 2))
        big = enlarge_with_jitter(base, 5, noise_scale=0.01, seed=0)
        assert big.shape == (500, 2)

    def test_enlarge_first_block_is_original(self, rng):
        base = rng.normal(size=(50, 2))
        big = enlarge_with_jitter(base, 3, noise_scale=0.01, seed=0)
        assert np.array_equal(big[:50], base)

    def test_enlarge_replicas_are_jittered(self, rng):
        base = rng.normal(size=(50, 2))
        big = enlarge_with_jitter(base, 2, noise_scale=0.01, seed=0)
        assert not np.array_equal(big[50:], base)
        assert np.abs(big[50:] - base).max() < 0.1

    def test_enlarge_factor_one_copies(self, rng):
        base = rng.normal(size=(10, 2))
        out = enlarge_with_jitter(base, 1, noise_scale=0.1)
        assert np.array_equal(out, base)
        assert out is not base

    def test_enlarge_validation(self, rng):
        with pytest.raises(ParameterError):
            enlarge_with_jitter(rng.normal(size=(5, 2)), 0, 0.1)

    def test_sample_size(self, rng):
        base = rng.normal(size=(1000, 2))
        out = sample_fraction(base, 0.25, seed=0)
        assert out.shape == (250, 2)

    def test_sample_rows_come_from_base(self, rng):
        base = rng.normal(size=(200, 2))
        out = sample_fraction(base, 0.1, seed=0)
        base_rows = {tuple(row) for row in base}
        assert all(tuple(row) in base_rows for row in out)

    def test_sample_no_duplicates(self, rng):
        base = rng.normal(size=(100, 2))
        out = sample_fraction(base, 0.5, seed=1)
        assert len({tuple(row) for row in out}) == out.shape[0]

    def test_sample_validation(self, rng):
        with pytest.raises(ParameterError):
            sample_fraction(rng.normal(size=(5, 2)), 0.0)
        with pytest.raises(ParameterError):
            sample_fraction(rng.normal(size=(5, 2)), 1.5)
