"""Tests for dataset file I/O helpers."""

import numpy as np
import pytest

from repro.datasets.io import load_points, save_outliers, save_points
from repro.exceptions import DataValidationError


class TestRoundTrips:
    def test_csv_roundtrip(self, tmp_path, rng):
        points = rng.normal(size=(20, 3))
        path = tmp_path / "points.csv"
        save_points(points, path)
        loaded = load_points(path)
        assert np.allclose(loaded, points)

    def test_npy_roundtrip(self, tmp_path, rng):
        points = rng.normal(size=(15, 2))
        path = tmp_path / "points.npy"
        save_points(points, path)
        loaded = load_points(path)
        assert np.array_equal(loaded, points)

    def test_csv_with_header_skipped(self, tmp_path):
        path = tmp_path / "points.csv"
        path.write_text("x,y\n1.0,2.0\n3.0,4.0\n")
        loaded = load_points(path)
        assert loaded.tolist() == [[1.0, 2.0], [3.0, 4.0]]

    def test_csv_without_header(self, tmp_path):
        path = tmp_path / "points.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        assert load_points(path).shape == (2, 2)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "points.tsv"
        path.write_text("1.0\t2.0\n3.0\t4.0\n")
        assert load_points(path, delimiter="\t").shape == (2, 2)

    def test_single_row(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("1.5,2.5\n")
        assert load_points(path).shape == (1, 2)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_points(tmp_path / "nope.csv")

    def test_garbage_content(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\nhello,world\n")
        with pytest.raises(DataValidationError):
            load_points(path)

    def test_nan_rejected(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("1.0,nan\n")
        with pytest.raises(DataValidationError):
            load_points(path)


class TestSaveOutliers:
    def test_indices_one_per_line(self, tmp_path):
        path = tmp_path / "outliers.txt"
        save_outliers(np.array([3, 7, 11]), path)
        assert path.read_text().split() == ["3", "7", "11"]
