"""Tests for the geographic projection helpers."""

import numpy as np
import pytest

from repro.datasets.projection import (
    EARTH_RADIUS_METERS,
    haversine_distance,
    project_to_meters,
    unproject_to_degrees,
)
from repro.exceptions import DataValidationError


class TestProjection:
    def test_roundtrip(self, rng):
        latlon = np.column_stack(
            [rng.uniform(39.5, 40.5, 50), rng.uniform(116.0, 117.0, 50)]
        )
        xy, origin = project_to_meters(latlon)
        back = unproject_to_degrees(xy, origin)
        assert np.allclose(back, latlon, atol=1e-9)

    def test_origin_maps_to_zero(self):
        xy, origin = project_to_meters(
            np.array([[40.0, 116.0]]), origin=(40.0, 116.0)
        )
        assert np.allclose(xy, 0.0)

    def test_one_degree_latitude_is_111km(self):
        xy, _ = project_to_meters(
            np.array([[40.0, 116.0], [41.0, 116.0]]), origin=(40.0, 116.0)
        )
        assert xy[1, 1] == pytest.approx(
            EARTH_RADIUS_METERS * np.pi / 180.0, rel=1e-9
        )
        assert 110_000 < xy[1, 1] < 112_000

    def test_longitude_shrinks_with_latitude(self):
        equator, _ = project_to_meters(
            np.array([[0.0, 0.0], [0.0, 1.0]]), origin=(0.0, 0.0)
        )
        arctic, _ = project_to_meters(
            np.array([[60.0, 0.0], [60.0, 1.0]]), origin=(60.0, 0.0)
        )
        assert arctic[1, 0] == pytest.approx(equator[1, 0] * 0.5, rel=1e-6)

    def test_projection_error_small_at_city_scale(self, rng):
        # Within ~50 km of the origin, projected Euclidean distances
        # match great-circle distances to well under 1%.
        origin = (39.9, 116.4)
        lat = rng.uniform(39.7, 40.1, 200)
        lon = rng.uniform(116.2, 116.6, 200)
        latlon = np.column_stack([lat, lon])
        xy, _ = project_to_meters(latlon, origin=origin)
        a, b = latlon[:100], latlon[100:]
        true = haversine_distance(a, b)
        projected = np.linalg.norm(xy[:100] - xy[100:], axis=1)
        mask = true > 100.0  # skip near-zero distances
        rel_err = np.abs(projected[mask] - true[mask]) / true[mask]
        assert rel_err.max() < 0.01

    def test_validation(self):
        with pytest.raises(DataValidationError):
            project_to_meters(np.array([[95.0, 0.0]]))
        with pytest.raises(DataValidationError):
            project_to_meters(np.array([[0.0, 190.0]]))
        with pytest.raises(DataValidationError):
            project_to_meters(np.zeros((2, 3)))
        with pytest.raises(DataValidationError):
            project_to_meters(np.zeros((0, 2)))


class TestHaversine:
    def test_zero_distance(self):
        point = np.array([[10.0, 20.0]])
        assert haversine_distance(point, point)[0] == 0.0

    def test_quarter_meridian(self):
        # Pole to equator along a meridian = quarter circumference.
        d = haversine_distance(
            np.array([[0.0, 0.0]]), np.array([[90.0, 0.0]])
        )[0]
        assert d == pytest.approx(
            EARTH_RADIUS_METERS * np.pi / 2.0, rel=1e-12
        )

    def test_symmetry(self, rng):
        a = np.column_stack(
            [rng.uniform(-80, 80, 20), rng.uniform(-170, 170, 20)]
        )
        b = np.column_stack(
            [rng.uniform(-80, 80, 20), rng.uniform(-170, 170, 20)]
        )
        assert np.allclose(
            haversine_distance(a, b), haversine_distance(b, a)
        )

    def test_shape_mismatch(self):
        with pytest.raises(DataValidationError):
            haversine_distance(np.zeros((2, 2)), np.zeros((3, 2)))


class TestEndToEnd:
    def test_detect_on_projected_gps(self, rng):
        # A city cluster plus two far-away fixes, in degrees; project,
        # detect with a meter-scale eps, map the outliers back.
        from repro import DBSCOUT

        city = np.column_stack(
            [rng.normal(39.9, 0.01, 300), rng.normal(116.4, 0.01, 300)]
        )
        strays = np.array([[41.5, 118.0], [38.0, 114.0]])
        latlon = np.vstack([city, strays])
        xy, origin = project_to_meters(latlon)
        result = DBSCOUT(eps=1_000.0, min_pts=10).fit(xy)
        assert result.outlier_mask[-2:].all()
        assert result.outlier_mask[:-2].mean() < 0.05
        recovered = unproject_to_degrees(xy[result.outlier_indices], origin)
        # The two strays' coordinates round-trip through the pipeline.
        for stray in strays:
            gaps = np.abs(recovered - stray).sum(axis=1)
            assert gaps.min() < 1e-6
