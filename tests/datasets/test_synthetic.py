"""Tests for the labelled synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    make_blobs,
    make_blobs_varying_density,
    make_circles,
    make_moons,
    scatter_outliers,
)
from repro.exceptions import ParameterError

ALL_MAKERS = [make_blobs, make_blobs_varying_density, make_circles, make_moons]


class TestCommonContract:
    @pytest.mark.parametrize("maker", ALL_MAKERS)
    def test_shapes_and_labels(self, maker):
        ds = maker(n_inliers=200, n_outliers=8, seed=1)
        assert ds.points.shape == (208, 2)
        assert ds.outlier_labels.shape == (208,)
        assert ds.n_outliers == 8
        assert set(np.unique(ds.outlier_labels)) <= {0, 1}

    @pytest.mark.parametrize("maker", ALL_MAKERS)
    def test_deterministic(self, maker):
        a = maker(seed=42)
        b = maker(seed=42)
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.outlier_labels, b.outlier_labels)

    @pytest.mark.parametrize("maker", ALL_MAKERS)
    def test_seed_changes_data(self, maker):
        a = maker(seed=1)
        b = maker(seed=2)
        assert not np.array_equal(a.points, b.points)

    @pytest.mark.parametrize("maker", ALL_MAKERS)
    def test_outliers_are_isolated(self, maker):
        # Every labelled outlier must be measurably farther from the
        # inlier structure than typical inlier spacing.
        from scipy.spatial import cKDTree

        ds = maker(n_inliers=500, n_outliers=10, seed=3)
        inliers = ds.points[ds.outlier_labels == 0]
        outliers = ds.points[ds.outlier_labels == 1]
        tree = cKDTree(inliers)
        outlier_gap = tree.query(outliers, k=1)[0].min()
        inlier_gap = np.median(tree.query(inliers, k=2)[0][:, 1])
        assert outlier_gap > 3 * inlier_gap

    @pytest.mark.parametrize("maker", ALL_MAKERS)
    def test_shuffled_not_sorted_by_label(self, maker):
        ds = maker(seed=0)
        labels = ds.outlier_labels
        # If shuffling works, outliers are not all at the end.
        assert labels[-ds.n_outliers :].sum() < ds.n_outliers

    @pytest.mark.parametrize("maker", ALL_MAKERS)
    def test_contamination_property(self, maker):
        ds = maker(n_inliers=99, n_outliers=1, seed=0)
        assert ds.contamination == pytest.approx(0.01)

    def test_zero_outliers(self):
        ds = make_blobs(n_inliers=50, n_outliers=0, seed=0)
        assert ds.n_outliers == 0
        assert ds.points.shape == (50, 2)

    def test_invalid_counts(self):
        with pytest.raises(ParameterError):
            make_blobs(n_inliers=0)
        with pytest.raises(ParameterError):
            make_blobs(n_outliers=-1)


class TestShapes:
    def test_circles_radii(self):
        ds = make_circles(n_inliers=400, n_outliers=0, factor=0.5, seed=0)
        radii = np.linalg.norm(ds.points, axis=1)
        # Two modes: near 0.5 and near 1.0.
        near_inner = np.abs(radii - 0.5) < 0.15
        near_outer = np.abs(radii - 1.0) < 0.15
        assert (near_inner | near_outer).mean() > 0.95

    def test_moons_two_lobes(self):
        ds = make_moons(n_inliers=400, n_outliers=0, seed=0)
        assert ds.points[:, 1].max() > 0.8
        assert ds.points[:, 1].min() < -0.3

    def test_blobs_vd_requires_stds(self):
        with pytest.raises(ParameterError):
            make_blobs_varying_density(cluster_stds=())

    def test_blobs_vd_has_density_contrast(self):
        from scipy.spatial import cKDTree

        ds = make_blobs_varying_density(
            n_inliers=900, n_outliers=0, cluster_stds=(0.1, 1.5), seed=5
        )
        tree = cKDTree(ds.points)
        gaps = tree.query(ds.points, k=2)[0][:, 1]
        # Mixed densities: wide spread between tight and loose regions.
        assert np.percentile(gaps, 90) > 5 * np.percentile(gaps, 10)


class TestScatterOutliers:
    def test_respects_clearance(self, rng):
        inliers = rng.normal(size=(200, 2))
        outliers = scatter_outliers(inliers, 20, rng, clearance=1.0)
        from scipy.spatial import cKDTree

        gaps = cKDTree(inliers).query(outliers, k=1)[0]
        assert (gaps >= 1.0).all()

    def test_impossible_clearance_raises(self, rng):
        inliers = rng.normal(size=(500, 2))
        with pytest.raises(ParameterError):
            scatter_outliers(inliers, 10, rng, clearance=100.0)

    def test_zero_requested(self, rng):
        out = scatter_outliers(rng.normal(size=(10, 2)), 0, rng, clearance=1.0)
        assert out.shape == (0, 2)
