"""Tests for the experiment runner and table renderers."""

import time

import pytest

from repro.exceptions import ParameterError
from repro.experiments import (
    Measurement,
    format_series,
    format_table,
    run_timed,
    time_callable,
)


class TestRunner:
    def test_time_callable_returns_value(self):
        elapsed, value = time_callable(lambda: 41 + 1)
        assert value == 42
        assert elapsed >= 0

    def test_run_timed_repeats(self):
        calls = []
        measurement = run_timed("x", lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert len(measurement.seconds) == 4

    def test_measurement_stats(self):
        measurement = Measurement("m", (1.0, 2.0, 3.0))
        assert measurement.mean == pytest.approx(2.0)
        assert measurement.std == pytest.approx((2 / 3) ** 0.5)
        assert measurement.best == 1.0

    def test_measures_actual_time(self):
        measurement = run_timed("sleep", lambda: time.sleep(0.01), repeats=1)
        assert measurement.mean >= 0.009

    def test_payload_is_last_result(self):
        results = iter([1, 2, 3])
        measurement = run_timed("payload", lambda: next(results), repeats=3)
        assert measurement.payload == 3

    def test_invalid_repeats(self):
        with pytest.raises(ParameterError):
            run_timed("x", lambda: None, repeats=0)

    def test_str(self):
        assert "±" in str(Measurement("m", (1.0, 1.0)))


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_format_table_floats(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.142" in text

    def test_format_table_large_floats_scientific(self):
        text = format_table(["x"], [[2.5e9]])
        assert "e+09" in text

    def test_format_series_missing_values(self):
        text = format_series(
            "n",
            {
                "fast": {10: 1.0, 20: 2.0},
                "slow": {10: 5.0},  # DNF at 20
            },
        )
        lines = text.splitlines()
        assert lines[0].split() == ["n", "fast", "slow"]
        assert "-" in lines[-1]

    def test_format_series_row_order_follows_insertion(self):
        text = format_series("n", {"a": {3: 1.0, 1: 2.0}})
        rows = [line.split()[0] for line in text.splitlines()[2:]]
        assert rows == ["3", "1"]
