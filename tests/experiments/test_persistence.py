"""Tests for experiment result persistence."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.experiments import Measurement
from repro.experiments.persistence import (
    load_experiment,
    measurement_to_dict,
    save_experiment,
)


class TestMeasurementToDict:
    def test_fields(self):
        record = measurement_to_dict(Measurement("m", (1.0, 3.0)))
        assert record == {
            "label": "m",
            "seconds": [1.0, 3.0],
            "mean": 2.0,
            "std": 1.0,
            "best": 1.0,
        }


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        payload = {"rows": [[1, 2.5], [3, 4.5]], "note": "hello"}
        save_experiment("t1", payload, directory=tmp_path)
        assert load_experiment("t1", directory=tmp_path) == payload

    def test_numpy_values_converted(self, tmp_path):
        payload = {
            "array": np.array([1.0, 2.0]),
            "scalar": np.int64(7),
            "nested": {"x": np.float64(0.5)},
        }
        save_experiment("t2", payload, directory=tmp_path)
        loaded = load_experiment("t2", directory=tmp_path)
        assert loaded == {
            "array": [1.0, 2.0],
            "scalar": 7,
            "nested": {"x": 0.5},
        }

    def test_measurements_converted(self, tmp_path):
        payload = {"timing": Measurement("run", (0.5, 1.5))}
        save_experiment("t3", payload, directory=tmp_path)
        loaded = load_experiment("t3", directory=tmp_path)
        assert loaded["timing"]["mean"] == 1.0

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "results"
        path = save_experiment("t4", {"a": 1}, directory=target)
        assert path.exists()

    def test_invalid_name(self, tmp_path):
        with pytest.raises(DataValidationError):
            save_experiment("../escape", {}, directory=tmp_path)
        with pytest.raises(DataValidationError):
            save_experiment("", {}, directory=tmp_path)

    def test_missing_load(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_experiment("nope", directory=tmp_path)

    def test_overwrite(self, tmp_path):
        save_experiment("t5", {"v": 1}, directory=tmp_path)
        save_experiment("t5", {"v": 2}, directory=tmp_path)
        assert load_experiment("t5", directory=tmp_path) == {"v": 2}
