"""Tests for the ASCII plotting utilities."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.experiments.plotting import ascii_curve, ascii_loglog, ascii_scatter


class TestScatter:
    def test_renders_framed_canvas(self, rng):
        points = rng.normal(size=(50, 2))
        plot = ascii_scatter(points, width=40, height=10)
        lines = plot.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 42 for line in lines)
        assert lines[0].startswith("+--")

    def test_masked_points_use_loud_marker(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        mask = np.array([False, True])
        plot = ascii_scatter(points, mask, width=20, height=8)
        assert "X" in plot
        assert "." in plot

    def test_masked_marker_wins_collisions(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        mask = np.array([False, True, False])
        plot = ascii_scatter(points, mask, width=20, height=8)
        assert plot.count("X") == 1

    def test_corner_points_inside_frame(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        plot = ascii_scatter(points, width=10, height=5)
        rows = plot.splitlines()[1:-1]
        assert rows[0][-2] == "."  # top-right
        assert rows[-1][1] == "."  # bottom-left

    def test_empty_points_ok(self):
        plot = ascii_scatter(np.zeros((0, 2)), width=10, height=5)
        assert "." not in plot

    def test_wrong_shape_rejected(self):
        with pytest.raises(ParameterError):
            ascii_scatter(np.zeros((3, 3)))

    def test_tiny_canvas_rejected(self, rng):
        with pytest.raises(ParameterError):
            ascii_scatter(rng.normal(size=(5, 2)), width=2, height=2)


class TestCurve:
    def test_descending_curve_shape(self):
        plot = ascii_curve(np.linspace(10, 0, 100), width=20, height=8)
        lines = plot.splitlines()
        assert len(lines) == 8
        # Highest level line holds the leftmost star.
        assert "*" in lines[0]
        assert lines[0].index("*") < lines[-1].rindex("*")

    def test_mark_label_present(self):
        plot = ascii_curve(
            np.linspace(10, 0, 100), mark_value=5.0, mark_label="<- eps"
        )
        assert "<- eps" in plot

    def test_constant_curve(self):
        plot = ascii_curve([3.0, 3.0, 3.0], width=10, height=4)
        assert "*" in plot

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            ascii_curve([])


class TestLogLog:
    def test_two_series_rendered_with_legend(self):
        plot = ascii_loglog(
            {
                "dbscout": {10: 1.0, 100: 10.0, 1000: 100.0},
                "rp": {10: 2.0, 100: 40.0, 1000: 900.0},
            },
            width=30,
            height=10,
        )
        assert "D = dbscout" in plot
        assert "R = rp" in plot
        assert "D" in plot.splitlines()[1:-2][-1] + plot

    def test_linear_series_is_diagonal(self):
        plot = ascii_loglog(
            {"lin": {1: 1.0, 10: 10.0, 100: 100.0}}, width=21, height=11
        )
        rows = plot.splitlines()[1:-2]
        # Marks appear on a descending diagonal: first row holds the
        # rightmost mark, last row the leftmost.
        first = next(row for row in rows if "L" in row)
        last = next(row for row in reversed(rows) if "L" in row)
        assert first.index("L") > last.index("L")

    def test_requires_positive_values(self):
        with pytest.raises(ParameterError):
            ascii_loglog({"s": {0: 0.0}})

    def test_requires_series(self):
        with pytest.raises(ParameterError):
            ascii_loglog({})
