"""Tests for the parameter-sweep utilities."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.experiments.sweeps import stability_report, sweep_grid


@pytest.fixture
def sweep_points(rng):
    return np.vstack(
        [rng.normal(0, 0.4, (200, 2)), rng.uniform(-8, 8, (20, 2))]
    )


class TestSweepGrid:
    def test_covers_full_grid(self, sweep_points):
        sweep = sweep_grid(sweep_points, [0.5, 1.0], [3, 5, 8])
        assert len(sweep.cells) == 6
        eps_values, min_pts_values, matrix = sweep.outlier_matrix()
        assert eps_values == [0.5, 1.0]
        assert min_pts_values == [3, 5, 8]
        assert (matrix >= 0).all()

    def test_monotone_in_eps(self, sweep_points):
        sweep = sweep_grid(sweep_points, [0.25, 0.5, 1.0, 2.0], [5])
        _, _, matrix = sweep.outlier_matrix()
        row = matrix[0].tolist()
        assert row == sorted(row, reverse=True)

    def test_monotone_in_min_pts(self, sweep_points):
        sweep = sweep_grid(sweep_points, [0.6], [2, 4, 8, 16])
        _, _, matrix = sweep.outlier_matrix()
        column = matrix[:, 0].tolist()
        assert column == sorted(column)

    def test_counts_match_direct_run(self, sweep_points):
        from repro import detect_outliers

        sweep = sweep_grid(sweep_points, [0.7], [6])
        cell = sweep.at(0.7, 6)
        assert cell.n_outliers == detect_outliers(
            sweep_points, 0.7, 6
        ).n_outliers
        assert cell.outlier_fraction == pytest.approx(
            cell.n_outliers / sweep_points.shape[0]
        )

    def test_missing_lookup(self, sweep_points):
        sweep = sweep_grid(sweep_points, [0.7], [6])
        with pytest.raises(ParameterError):
            sweep.at(0.9, 6)

    def test_empty_axes_rejected(self, sweep_points):
        with pytest.raises(ParameterError):
            sweep_grid(sweep_points, [], [5])
        with pytest.raises(ParameterError):
            sweep_grid(sweep_points, [0.5], [])


class TestStabilityReport:
    def test_plateau_found_on_well_separated_data(self, rng):
        # Clear structure: a tight cluster plus 10 distant strays.
        points = np.vstack(
            [rng.normal(0, 0.2, (300, 2)), rng.uniform(50, 90, (10, 2))]
        )
        sweep = sweep_grid(points, [1.0, 2.0, 4.0, 8.0], [3, 5, 8])
        stable = stability_report(sweep, tolerance=0.2)
        assert stable, "expected a stable plateau"
        # The plateau sits at the true outlier count.
        assert stable[0].n_outliers == 10

    def test_zero_cells_excluded(self, rng):
        points = rng.normal(0, 0.1, size=(100, 2))
        sweep = sweep_grid(points, [5.0, 10.0], [2, 3])
        stable = stability_report(sweep)
        assert all(cell.n_outliers > 0 for cell in stable)

    def test_sorted_by_stability(self, sweep_points):
        sweep = sweep_grid(
            sweep_points, [0.4, 0.8, 1.6], [3, 6, 12]
        )
        stable = stability_report(sweep, tolerance=1.0)
        # Re-derive the stability score and check the ordering.
        eps_values, min_pts_values, matrix = sweep.outlier_matrix()

        def worst_change(cell):
            row = min_pts_values.index(cell.min_pts)
            col = eps_values.index(cell.eps)
            worst = 0.0
            for d_row, d_col in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                n_row, n_col = row + d_row, col + d_col
                if 0 <= n_row < len(min_pts_values) and 0 <= n_col < len(
                    eps_values
                ):
                    worst = max(
                        worst,
                        abs(matrix[n_row, n_col] - cell.n_outliers)
                        / max(cell.n_outliers, 1),
                    )
            return worst

        scores = [worst_change(cell) for cell in stable]
        assert scores == sorted(scores)

    def test_invalid_tolerance(self, sweep_points):
        sweep = sweep_grid(sweep_points, [0.5], [5])
        with pytest.raises(ParameterError):
            stability_report(sweep, tolerance=0.0)
