"""Tests for the outlier-class classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError
from repro.metrics import (
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
)


class TestConfusion:
    def test_hand_example(self):
        y_true = [1, 1, 0, 0, 1, 0]
        y_pred = [1, 0, 1, 0, 1, 0]
        assert confusion_counts(y_true, y_pred) == (2, 1, 1, 2)

    def test_bool_arrays(self):
        y_true = np.array([True, False])
        y_pred = np.array([True, True])
        assert confusion_counts(y_true, y_pred) == (1, 1, 0, 0)

    def test_shape_mismatch(self):
        with pytest.raises(DataValidationError):
            confusion_counts([1, 0], [1])

    def test_empty(self):
        assert confusion_counts([], []) == (0, 0, 0, 0)


class TestScores:
    def test_perfect(self):
        y = [1, 0, 1, 0]
        assert f1_score(y, y) == 1.0
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0

    def test_all_wrong(self):
        y_true = [1, 0]
        y_pred = [0, 1]
        assert f1_score(y_true, y_pred) == 0.0

    def test_no_predictions(self):
        assert precision_score([1, 1], [0, 0]) == 0.0
        assert recall_score([1, 1], [0, 0]) == 0.0
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_no_positives_at_all(self):
        assert f1_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [0, 0]) == 0.0

    def test_known_value(self):
        # precision 2/3, recall 2/4 -> F1 = 2*(2/3*1/2)/(2/3+1/2) = 4/7.
        y_true = [1, 1, 1, 1, 0, 0, 0]
        y_pred = [1, 1, 0, 0, 1, 0, 0]
        assert f1_score(y_true, y_pred) == pytest.approx(4 / 7)

    @settings(max_examples=100, deadline=None)
    @given(
        labels=st.lists(
            st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60
        )
    )
    def test_f1_is_harmonic_mean(self, labels):
        y_true = [a for a, _ in labels]
        y_pred = [b for _, b in labels]
        f1 = f1_score(y_true, y_pred)
        precision = precision_score(y_true, y_pred)
        recall = recall_score(y_true, y_pred)
        if precision + recall == 0:
            assert f1 == 0.0
        else:
            assert f1 == pytest.approx(
                2 * precision * recall / (precision + recall)
            )

    def test_empty_inputs_are_zero_not_nan(self):
        # The approximate tier scores itself on arbitrary runs,
        # including zero-point ones; every score must be a finite 0.0.
        for score in (precision_score, recall_score, f1_score):
            value = score([], [])
            assert value == 0.0
            assert np.isfinite(value)
        empty = np.zeros(0, dtype=bool)
        assert confusion_counts(empty, empty) == (0, 0, 0, 0)

    def test_all_outliers_everywhere(self):
        # Both sides flag everything: perfect agreement.
        y = np.ones(7, dtype=np.int64)
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0
        assert f1_score(y, y) == 1.0
        assert confusion_counts(y, y) == (7, 0, 0, 0)

    def test_all_inliers_everywhere(self):
        # No outliers on either side: zero denominators, scores 0.0 by
        # convention (callers gate on exact-outlier counts first).
        y = np.zeros(5, dtype=np.int64)
        assert precision_score(y, y) == 0.0
        assert recall_score(y, y) == 0.0
        assert f1_score(y, y) == 0.0
        assert confusion_counts(y, y) == (0, 0, 0, 5)

    def test_all_flagged_against_all_clean(self):
        y_true = np.zeros(4, dtype=np.int64)
        y_pred = np.ones(4, dtype=np.int64)
        assert precision_score(y_true, y_pred) == 0.0
        assert recall_score(y_true, y_pred) == 0.0
        assert confusion_counts(y_true, y_pred) == (0, 4, 0, 0)

    def test_scores_reject_shape_mismatch(self):
        for score in (precision_score, recall_score, f1_score):
            with pytest.raises(DataValidationError):
                score([1, 0, 1], [1, 0])

    def test_equal_shape_2d_input_reduces_over_all_elements(self):
        # Documented contract: arrays of equal shape reduce over all
        # elements, so a (2, 2) mask scores like its ravel.
        y_true = [[1, 0], [1, 0]]
        y_pred = [[1, 1], [0, 0]]
        assert confusion_counts(y_true, y_pred) == (1, 1, 1, 1)
        assert precision_score(y_true, y_pred) == 0.5

    @settings(max_examples=100, deadline=None)
    @given(
        labels=st.lists(
            st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60
        )
    )
    def test_scores_bounded(self, labels):
        y_true = [a for a, _ in labels]
        y_pred = [b for _, b in labels]
        for score in (
            f1_score(y_true, y_pred),
            precision_score(y_true, y_pred),
            recall_score(y_true, y_pred),
        ):
            assert 0.0 <= score <= 1.0
