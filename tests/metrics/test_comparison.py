"""Tests for exact-vs-approximate outlier set comparison (Tables IV/V)."""

import numpy as np
import pytest

from repro.metrics import compare_outlier_sets


class TestCompareOutlierSets:
    def test_identical_sets(self):
        mask = np.array([True, False, True, False])
        comparison = compare_outlier_sets(mask, mask)
        assert comparison.as_row() == (2, 2, 2, 0, 0)
        assert comparison.is_superset

    def test_superset_with_false_positives(self):
        exact = np.array([True, False, False, False])
        approx = np.array([True, True, True, False])
        comparison = compare_outlier_sets(exact, approx)
        assert comparison.true_positives == 1
        assert comparison.false_positives == 2
        assert comparison.false_negatives == 0
        assert comparison.is_superset
        assert comparison.false_positive_rate_of_output == pytest.approx(2 / 3)

    def test_false_negatives(self):
        exact = np.array([True, True, False])
        approx = np.array([True, False, False])
        comparison = compare_outlier_sets(exact, approx)
        assert comparison.false_negatives == 1
        assert not comparison.is_superset
        assert comparison.false_negative_rate == pytest.approx(0.5)

    def test_empty_exact_set(self):
        exact = np.zeros(5, dtype=bool)
        approx = np.array([True, False, False, False, False])
        comparison = compare_outlier_sets(exact, approx)
        assert comparison.n_exact == 0
        assert comparison.false_negative_rate == 0.0

    def test_empty_approx_set(self):
        exact = np.array([True, False])
        approx = np.zeros(2, dtype=bool)
        comparison = compare_outlier_sets(exact, approx)
        assert comparison.false_positive_rate_of_output == 0.0
        assert comparison.n_approx == 0

    def test_counts_consistent(self, rng):
        exact = rng.random(200) < 0.1
        approx = rng.random(200) < 0.15
        comparison = compare_outlier_sets(exact, approx)
        assert (
            comparison.true_positives + comparison.false_negatives
            == comparison.n_exact
        )
        assert (
            comparison.true_positives + comparison.false_positives
            == comparison.n_approx
        )
