"""Tests for the ranking metrics (ROC-AUC, AP, precision@n)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError, ParameterError
from repro.metrics.ranking import (
    average_precision_score,
    precision_at_n,
    roc_auc_score,
)


def brute_auc(y_true, scores) -> float:
    """Pairwise definition: P(score_pos > score_neg) + 0.5 P(tie)."""
    y = np.asarray(y_true, dtype=bool)
    s = np.asarray(scores, dtype=float)
    pos = s[y]
    neg = s[~y]
    wins = (pos[:, None] > neg[None, :]).sum()
    ties = (pos[:, None] == neg[None, :]).sum()
    return (wins + 0.5 * ties) / (len(pos) * len(neg))


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_ranking_half(self):
        # All scores equal: AUC must be exactly 0.5 by tie handling.
        assert roc_auc_score([0, 1, 0, 1], [5.0, 5.0, 5.0, 5.0]) == 0.5

    def test_hand_computed(self):
        # pos scores {3, 1}, neg scores {2, 0}: pairs (3>2, 3>0, 1<2,
        # 1>0) -> 3/4.
        assert roc_auc_score([1, 0, 1, 0], [3.0, 2.0, 1.0, 0.0]) == 0.75

    def test_single_class_rejected(self):
        with pytest.raises(DataValidationError):
            roc_auc_score([1, 1], [0.1, 0.2])

    def test_nan_rejected(self):
        with pytest.raises(DataValidationError):
            roc_auc_score([0, 1], [0.0, float("nan")])

    @settings(max_examples=100, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.booleans(), st.integers(min_value=-20, max_value=20)
            ),
            min_size=2,
            max_size=60,
        ).filter(
            lambda rows: any(label for label, _ in rows)
            and any(not label for label, _ in rows)
        )
    )
    def test_matches_pairwise_definition(self, data):
        y = [label for label, _ in data]
        s = [float(score) for _, score in data]
        assert roc_auc_score(y, s) == pytest.approx(brute_auc(y, s))

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.booleans(), st.integers(min_value=-20, max_value=20)
            ),
            min_size=2,
            max_size=40,
        ).filter(
            lambda rows: any(label for label, _ in rows)
            and any(not label for label, _ in rows)
        )
    )
    def test_complement_symmetry(self, data):
        y = [label for label, _ in data]
        s = [float(score) for _, score in data]
        auc = roc_auc_score(y, s)
        flipped = roc_auc_score(y, [-v for v in s])
        assert auc + flipped == pytest.approx(1.0)


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision_score([1, 1, 0, 0], [4, 3, 2, 1]) == 1.0

    def test_hand_computed(self):
        # Ranking: pos, neg, pos, neg -> AP = (1/1 + 2/3) / 2 = 5/6.
        ap = average_precision_score([1, 0, 1, 0], [4, 3, 2, 1])
        assert ap == pytest.approx(5 / 6)

    def test_worst_case(self):
        # Single positive ranked last of 4: AP = 1/4.
        ap = average_precision_score([0, 0, 0, 1], [4, 3, 2, 1])
        assert ap == pytest.approx(0.25)

    def test_needs_positive(self):
        with pytest.raises(DataValidationError):
            average_precision_score([0, 0], [1, 2])

    def test_bounded(self, rng):
        y = rng.random(50) < 0.2
        y[0] = True
        s = rng.random(50)
        assert 0.0 < average_precision_score(y, s) <= 1.0


class TestPrecisionAtN:
    def test_default_n_is_outlier_count(self):
        y = [1, 1, 0, 0, 0]
        s = [5, 4, 3, 2, 1]
        assert precision_at_n(y, s) == 1.0

    def test_explicit_n(self):
        y = [1, 0, 1, 0]
        s = [4, 3, 2, 1]
        assert precision_at_n(y, s, n=1) == 1.0
        assert precision_at_n(y, s, n=2) == 0.5

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            precision_at_n([1, 0], [1, 2], n=0)
        with pytest.raises(ParameterError):
            precision_at_n([1, 0], [1, 2], n=3)

    def test_detector_integration(self, rng):
        from repro.baselines import LocalOutlierFactor

        cluster = rng.normal(0.0, 0.3, size=(200, 2))
        planted = rng.uniform(6.0, 9.0, size=(8, 2))
        points = np.vstack([cluster, planted])
        labels = np.concatenate([np.zeros(200), np.ones(8)])
        result = LocalOutlierFactor(k=10, contamination=0.05).detect(points)
        assert precision_at_n(labels, result.scores) == 1.0
        assert roc_auc_score(labels, result.scores) > 0.99
