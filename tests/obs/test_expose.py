"""Prometheus/JSON exposition rendering and the HTTP listener."""

from __future__ import annotations

import json
import re
import urllib.request

import pytest

from repro.obs.expose import (
    METRIC_NAME_RE,
    MetricsHTTPServer,
    escape_label_value,
    render_json,
    render_prometheus,
    sanitize_metric_name,
    telemetry_text,
)

SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_][a-zA-Z0-9_]*)(\{[^}]*\})? [^ ]+$"
)


def _check_wellformed(text: str) -> dict[str, str]:
    """Assert 0.0.4 shape; return metric -> TYPE kind."""
    types: dict[str, str] = {}
    helped: set[str] = set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            _, _, metric, kind = line.split()
            assert METRIC_NAME_RE.match(metric), metric
            assert kind in ("counter", "gauge")
            # HELP must precede TYPE for the same family.
            assert metric in helped
            types[metric] = kind
            continue
        assert line, "no blank lines inside the exposition"
        match = SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        assert match.group(1) in types, f"sample before TYPE: {line!r}"
    return types


def test_sanitize_metric_name():
    assert sanitize_metric_name("serve.requests") == "serve_requests"
    assert sanitize_metric_name("9lives") == "_9lives"
    assert METRIC_NAME_RE.match(sanitize_metric_name("a-b.c d/e"))


def test_escape_label_value():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"


def test_render_prometheus_families_and_samples():
    text = render_prometheus(
        {
            "serve.requests": 7,
            "serve.queue_depth": 2,
            "serve.latency_p50_ms": 1.25,
            "serve.models": ["geo", "osm"],  # info/non-numeric: skipped
            "worker.w-0.tasks": 3,
            "worker.w-1.tasks": 4,
            "worker.tasks": 7,
        }
    )
    types = _check_wellformed(text)
    assert types["repro_serve_requests"] == "counter"
    assert types["repro_serve_queue_depth"] == "gauge"
    assert "repro_serve_models" not in types
    # Per-worker counters collapse into one labeled family with a
    # single HELP/TYPE header; the pre-aggregated total joins the same
    # family as the unlabeled sample (legal 0.0.4 exposition).
    assert text.count("# TYPE repro_worker_tasks ") == 1
    assert text.count("# HELP repro_worker_tasks ") == 1
    assert 'repro_worker_tasks{worker="w-0"} 3' in text
    assert 'repro_worker_tasks{worker="w-1"} 4' in text
    assert "\nrepro_worker_tasks 7" in text


def test_render_prometheus_label_escaping():
    nasty = 'w"0\\slash\nnewline'
    text = render_prometheus({}, workers=[{"name": nasty, "tasks": 1}])
    assert 'worker="w\\"0\\\\slash\\nnewline"' in text
    _check_wellformed(text)


def test_render_prometheus_worker_rows():
    text = render_prometheus(
        {"sparklite.net.tasks": 9},
        workers=[
            {
                "name": "w-0",
                "alive": True,
                "inflight": 1,
                "straggler": False,
                "tasks": 5,
                "task_seconds": 0.25,
                "ewma_ms": 12.5,
                "bytes_out": 100,
                "bytes_in": 90,
            },
            {"name": "w-1", "alive": False, "tasks": 4, "ewma_ms": None},
        ],
    )
    types = _check_wellformed(text)
    assert types["repro_net_worker_alive"] == "gauge"
    assert types["repro_net_worker_tasks"] == "counter"
    assert 'repro_net_worker_alive{worker="w-0"} 1' in text
    assert 'repro_net_worker_alive{worker="w-1"} 0' in text
    # None values are skipped, not rendered as text.
    assert 'repro_net_worker_ewma_ms{worker="w-1"}' not in text


def test_telemetry_text_and_json_roundtrip():
    snapshot = {
        "kind": "serve",
        "host": "127.0.0.1",
        "port": 7227,
        "counters": {"serve.requests": 3, "serve.latency_p50_ms": 0.5},
        "detectors": ["geo"],
    }
    text = telemetry_text(snapshot)
    assert "repro_serve_requests 3" in text
    decoded = json.loads(render_json(snapshot))
    assert decoded["counters"]["serve.requests"] == 3
    assert decoded["detectors"] == ["geo"]


def test_render_json_rejects_nan_silently():
    decoded = json.loads(
        render_json({"counters": {"serve.latency_p50_ms": float("nan")}})
    )
    assert decoded["counters"]["serve.latency_p50_ms"] is None


def test_metrics_http_server():
    snapshot = {
        "kind": "serve",
        "counters": {"serve.requests": 11},
        "detectors": ["geo"],
    }
    with MetricsHTTPServer(lambda: snapshot, port=0) as http:
        base = f"http://127.0.0.1:{http.port}"
        with urllib.request.urlopen(f"{base}/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]
            body = response.read().decode()
        _check_wellformed(body)
        assert "repro_serve_requests 11" in body
        with urllib.request.urlopen(f"{base}/telemetry") as response:
            assert response.headers["Content-Type"] == "application/json"
            decoded = json.loads(response.read())
        assert decoded["counters"]["serve.requests"] == 11
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/nope")
        assert err.value.code == 404


def test_metrics_http_server_handler_error_is_500():
    def boom():
        raise RuntimeError("snapshot unavailable")

    with MetricsHTTPServer(boom, port=0) as http:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"http://127.0.0.1:{http.port}/metrics")
        assert err.value.code == 500
