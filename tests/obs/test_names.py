"""The canonical metric-name registry guards the exposition surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbscout import DBSCOUT
from repro.obs import InMemorySink, names, recording
from repro.serve import OutlierService


def test_canonical_collapses_worker_instance_segment():
    assert names.canonical("worker.loopback-0.tasks") == "worker.<id>.tasks"
    assert (
        names.canonical("worker.w-123.task_seconds")
        == "worker.<id>.task_seconds"
    )
    # Two-part worker totals are already canonical.
    assert names.canonical("worker.tasks") == "worker.tasks"
    assert names.canonical("engine.pruned_cells") == "engine.pruned_cells"


def test_family_metadata_and_fallback():
    kind, help_text = names.family("serve.requests")
    assert kind == "counter"
    assert help_text
    assert names.family("serve.queue_depth")[0] == "gauge"
    assert names.family("worker.any-id.tasks")[0] == "counter"
    assert names.family("made.up.metric") == ("gauge", "undeclared metric")


def test_is_declared_and_undeclared():
    assert names.is_declared("sparklite.net.bytes_out")
    assert names.is_declared("worker.pid-9.records_out")
    assert not names.is_declared("bogus.counter")
    flagged = names.undeclared(
        ["serve.batches", "bogus.counter", "worker.w.tasks", "another.bad"]
    )
    assert flagged == ["another.bad", "bogus.counter"]


def test_every_family_kind_is_known():
    assert set(kind for kind, _ in names.FAMILIES.values()) <= {
        "counter",
        "gauge",
        "info",
    }
    assert all(help_text for _, help_text in names.FAMILIES.values())


@pytest.fixture
def points(rng):
    return np.vstack(
        [
            rng.normal(0.0, 0.4, size=(160, 2)),
            rng.uniform(-8.0, 8.0, size=(20, 2)),
        ]
    )


def test_real_run_record_counters_are_all_declared(points):
    """Every counter an actual fit emits must be in the registry."""
    emitted: set[str] = set()
    sink = InMemorySink()
    with recording(sink):
        DBSCOUT(eps=0.6, min_pts=8, engine="vectorized").fit(points)
        DBSCOUT(
            eps=0.6, min_pts=8, engine="distributed", num_partitions=4
        ).fit(points)
    for record in sink.records:
        emitted.update(record.counters)
    assert emitted, "expected run records with counters"
    assert names.undeclared(emitted) == []


def test_serve_stats_counters_are_all_declared(points):
    detector = DBSCOUT(eps=0.6, min_pts=8)
    detector.fit(points)
    with OutlierService() as service:
        service.register("geo", detector.core_model_)
        service.query("geo", points[:32])
        stats = service.stats()
    assert names.undeclared(stats) == []
