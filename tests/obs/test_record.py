"""Run-record schema, sinks, and metrics-registry behavior."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import to_builtin
from repro.types import TimingBreakdown


def _finished_record() -> obs.RunRecord:
    recorder = obs.RunRecorder(
        engine="vectorized",
        params={"eps": 0.5, "min_pts": np.int64(10)},
        context={"engine": "vectorized", "n_jobs": 1},
    )
    with recorder.span("grid"):
        pass
    with recorder.span("core_points"):
        with recorder.tracer.span("nested"):
            pass
    recorder.metrics.merge(
        {"distance_computations": np.int64(123), "pool.shards": 2},
        namespace="engine",
    )
    recorder.add_context(n_cells=7)
    return recorder.finish(n_points=100, n_dims=2)


def test_record_json_round_trip():
    record = _finished_record()
    line = record.to_json()
    clone = obs.RunRecord.from_dict(json.loads(line))
    assert clone.engine == record.engine
    assert clone.params == {"eps": 0.5, "min_pts": 10}
    assert clone.dataset == {"n_points": 100, "n_dims": 2}
    assert clone.counters == record.counters
    assert clone.run_id == record.run_id
    assert clone.schema_version == obs.SCHEMA_VERSION
    assert clone.phase_durations() == record.phase_durations()


def test_record_schema_contents():
    record = _finished_record()
    payload = record.to_dict()
    assert set(payload) == {
        "schema_version",
        "run_id",
        "created_at",
        "engine",
        "params",
        "dataset",
        "spans",
        "counters",
        "context",
        "memory",
        "versions",
    }
    assert payload["versions"].keys() >= {"python", "numpy"}
    # Namespacing: plain keys get the namespace, dotted keys pass
    # through untouched.
    assert payload["counters"]["engine.distance_computations"] == 123
    assert payload["counters"]["pool.shards"] == 2
    assert payload["memory"].get("peak_rss_bytes", 0) > 0


def test_flat_stats_strips_engine_namespace_only():
    record = _finished_record()
    stats = record.flat_stats()
    assert stats["distance_computations"] == 123
    assert stats["pool.shards"] == 2
    assert stats["n_jobs"] == 1
    assert stats["n_cells"] == 7
    assert "engine.distance_computations" not in stats


def test_timing_breakdown_uses_top_level_spans_only():
    record = _finished_record()
    timings = record.timing_breakdown()
    assert isinstance(timings, TimingBreakdown)
    assert set(timings.phases) == {"grid", "core_points"}
    assert "nested" not in timings.phases


def test_jsonl_sink_appends_and_loads(tmp_path):
    path = tmp_path / "runs" / "records.jsonl"
    sink = obs.JsonlSink(path)
    first, second = _finished_record(), _finished_record()
    sink.write(first)
    sink.write(second)
    loaded = obs.JsonlSink.load(path)
    assert [record.run_id for record in loaded] == [
        first.run_id,
        second.run_id,
    ]
    streamed = list(obs.iter_jsonl(path))
    assert [record.run_id for record in streamed] == [
        first.run_id,
        second.run_id,
    ]


def test_recording_scopes_the_sink():
    from repro.core.vectorized import VectorizedEngine

    points = np.random.default_rng(0).normal(size=(60, 2))
    with obs.recording() as sink:
        VectorizedEngine().detect(points, eps=0.5, min_pts=5)
    assert len(sink.records) == 1
    record = sink.records[0]
    assert record.engine == "vectorized"
    assert record.dataset == {"n_points": 60, "n_dims": 2}
    # Outside the block nothing is captured anymore.
    VectorizedEngine().detect(points, eps=0.5, min_pts=5)
    assert len(sink.records) == 1


def test_metrics_registry_namespacing_and_merge():
    registry = obs.MetricsRegistry()
    registry.increment("engine.distance_computations", 5)
    registry.merge({"pruned_cells": 3, "pool.shards": 4}, namespace="engine")
    registry.set("sparklite.tasks_executed", 9)
    snapshot = registry.snapshot()
    assert snapshot == {
        "engine.distance_computations": 5,
        "engine.pruned_cells": 3,
        "pool.shards": 4,
        "sparklite.tasks_executed": 9,
    }
    assert registry.namespace("engine") == {
        "distance_computations": 5,
        "pruned_cells": 3,
    }


def test_to_builtin_sanitizes_numpy_and_keeps_tuples():
    value = {
        "count": np.int64(3),
        "ratio": np.float64(0.5),
        "flag": np.bool_(True),
        "array": np.arange(3),
        "origin": (np.float64(10.0), 20.0),
        "nested": {"k": [np.int32(1)]},
    }
    result = to_builtin(value)
    assert result["count"] == 3 and type(result["count"]) is int
    assert result["ratio"] == 0.5 and type(result["ratio"]) is float
    assert result["flag"] is True
    assert result["array"] == [0, 1, 2]
    assert result["origin"] == (10.0, 20.0)
    assert isinstance(result["origin"], tuple)
    assert result["nested"] == {"k": [1]}
    json.dumps(result)  # everything JSON-serializable


def test_timing_breakdown_from_spans_classmethod():
    spans = [
        {"name": "grid", "depth": 0, "duration_s": 0.25},
        {"name": "grid", "depth": 0, "duration_s": 0.25},
        {"name": "inner", "depth": 1, "duration_s": 9.0},
    ]
    timings = TimingBreakdown.from_spans(spans)
    assert timings.phases == {"grid": 0.5}
    assert timings.total == pytest.approx(0.5)


def test_memory_snapshot_reports_rss():
    snapshot = obs.memory_snapshot()
    assert snapshot.get("peak_rss_bytes", 0) > 0


def test_to_builtin_finite_maps_nonfinite_to_none():
    value = {
        "nan": float("nan"),
        "np_nan": np.float64("nan"),
        "inf": float("inf"),
        "neg_inf": np.float32("-inf"),
        "ok": 1.5,
        "array": np.array([1.0, np.nan, np.inf]),
        "nested": {"deep": [float("nan"), (np.inf, 2.0)]},
    }
    result = to_builtin(value, finite=True)
    assert result["nan"] is None
    assert result["np_nan"] is None
    assert result["inf"] is None
    assert result["neg_inf"] is None
    assert result["ok"] == 1.5
    assert result["array"] == [1.0, None, None]
    assert result["nested"] == {"deep": [None, (None, 2.0)]}
    json.dumps(result, allow_nan=False)  # strict encoders accept it


def test_to_builtin_default_propagates_nan_for_arithmetic():
    # The MetricsRegistry arithmetic path must not see None.
    value = to_builtin(np.float64("nan"))
    assert isinstance(value, float) and value != value


def test_detection_result_stats_json_safe_with_nonfinite():
    from repro.types import DetectionResult

    result = DetectionResult(
        n_points=3,
        outlier_mask=np.zeros(3, dtype=bool),
        stats={
            "elbow_curvature": float("nan"),
            "ratio": np.float64("inf"),
            "nested": {"scores": np.array([0.5, np.nan])},
            "count": np.int64(7),
        },
    )
    assert result.stats["elbow_curvature"] is None
    assert result.stats["ratio"] is None
    assert result.stats["nested"] == {"scores": [0.5, None]}
    assert result.stats["count"] == 7
    json.dumps(result.stats, allow_nan=False)


def test_run_record_to_json_strict_with_nonfinite_everywhere():
    record = obs.RunRecord(
        engine="vectorized",
        params={"eps": float("nan")},
        counters={"engine.budget": float("inf")},
        context={"curvature": np.float64("-inf")},
        spans=[{"name": "grid", "depth": 0, "duration_s": float("nan")}],
        memory={"peak_rss_bytes": 1},
    )
    payload = record.to_dict()
    assert payload["params"]["eps"] is None
    assert payload["counters"]["engine.budget"] is None
    assert payload["context"]["curvature"] is None
    assert payload["spans"][0]["duration_s"] is None
    # strict: would raise ValueError if any NaN/Inf survived
    line = record.to_json()
    assert "NaN" not in line and "Infinity" not in line
    restored = obs.RunRecord.from_dict(json.loads(line))
    assert restored.engine == "vectorized"
