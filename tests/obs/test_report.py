"""Record rendering and regression diffing."""

from __future__ import annotations

from repro import obs


def _record(durations: dict, counters: dict) -> obs.RunRecord:
    spans = [
        {
            "name": name,
            "span_id": index,
            "parent_id": None,
            "depth": 0,
            "start_s": float(index),
            "duration_s": duration,
        }
        for index, (name, duration) in enumerate(durations.items())
    ]
    return obs.RunRecord(
        engine="vectorized",
        dataset={"n_points": 100},
        spans=spans,
        counters=dict(counters),
    )


def test_diff_flags_wall_and_counter_regressions():
    baseline = _record(
        {"grid": 0.1, "core_points": 1.0},
        {"engine.distance_computations": 1000},
    )
    candidate = _record(
        {"grid": 0.1, "core_points": 2.0},
        {"engine.distance_computations": 1200},
    )
    diff = obs.diff_records(baseline, candidate)
    flagged = diff.regressions(
        max_wall_fraction=0.5, max_counter_fraction=0.1
    )
    names = {(entry.kind, entry.name) for entry in flagged}
    assert ("phase", "core_points") in names
    assert ("counter", "engine.distance_computations") in names
    assert ("phase", "grid") not in names
    # total_wall grew from 1.1 to 2.1 (~91%), above the 50% threshold.
    assert ("total", "total_wall") in names


def test_diff_accepts_improvements():
    baseline = _record({"grid": 1.0}, {"c": 100})
    candidate = _record({"grid": 0.5}, {"c": 10})
    diff = obs.diff_records(baseline, candidate)
    assert diff.regressions(0.01, 0.01) == []
    (phase,) = diff.phases
    assert phase.ratio == 0.5
    assert phase.regression_fraction() == 0.0


def test_diff_handles_appearing_quantities():
    baseline = _record({"grid": 1.0}, {})
    candidate = _record({"grid": 1.0, "extra": 0.5}, {"new_counter": 5})
    diff = obs.diff_records(baseline, candidate)
    flagged = diff.regressions(10.0, 10.0)
    names = {entry.name for entry in flagged}
    assert "extra" in names
    assert "new_counter" in names


def test_diff_restricts_to_requested_counters():
    baseline = _record({}, {"a": 1, "b": 1})
    candidate = _record({}, {"a": 9, "b": 9})
    diff = obs.diff_records(baseline, candidate, counters=["b"])
    assert [entry.name for entry in diff.counters] == ["b"]


def test_format_diff_renders_a_table():
    baseline = _record({"grid": 0.1}, {"c": 5})
    candidate = _record({"grid": 0.2}, {"c": 5})
    text = obs.format_diff(obs.diff_records(baseline, candidate))
    assert "name" in text and "ratio" in text
    assert "grid" in text and "2.000x" in text
    assert "total_wall" in text


def test_format_span_tree_renders_nesting_and_attrs():
    record = obs.RunRecord(
        engine="distributed",
        dataset={"n_points": 42},
        spans=[
            {
                "name": "core_points",
                "span_id": 0,
                "parent_id": None,
                "depth": 0,
                "start_s": 0.0,
                "duration_s": 0.5,
            },
            {
                "name": "sparklite.shuffle",
                "span_id": 1,
                "parent_id": 0,
                "depth": 1,
                "start_s": 0.1,
                "duration_s": 0.2,
                "attrs": {"records": 7},
            },
        ],
    )
    text = obs.format_span_tree(record)
    lines = text.splitlines()
    assert "engine=distributed" in lines[0]
    assert lines[1].strip().startswith("core_points")
    # The child is indented deeper than its parent.
    parent_indent = len(lines[1]) - len(lines[1].lstrip())
    child_indent = len(lines[2]) - len(lines[2].lstrip())
    assert child_indent > parent_indent
    assert "records=7" in lines[2]


def test_format_record_includes_counters_and_memory():
    record = obs.RunRecord(
        engine="vectorized",
        counters={"engine.pruned_cells": 3},
        memory={"peak_rss_bytes": 2048},
    )
    text = obs.format_record(record)
    assert "engine.pruned_cells: 3" in text
    assert "memory.peak_rss_bytes: 2.0KiB" in text
