"""Dashboard rendering for ``repro top``."""

from __future__ import annotations

from repro.obs.top import render_dashboard

SERVE_SNAPSHOT = {
    "kind": "serve",
    "host": "127.0.0.1",
    "port": 7227,
    "detectors": ["geo", "osm"],
    "counters": {
        "serve.requests": 120,
        "serve.batches": 40,
        "serve.queue_depth": 2,
        "serve.rejected_overload": 1,
        "serve.latency_p50_ms": 1.5,
        "serve.latency_p90_ms": 3.0,
        "serve.latency_p99_ms": 9.0,
    },
}

NET_SNAPSHOT = {
    "kind": "netdriver",
    "host": "127.0.0.1",
    "port": 40001,
    "n_workers": 2,
    "counters": {
        "sparklite.net.tasks": 16,
        "sparklite.net.bytes_out": 2048,
        "sparklite.net.bytes_in": 1024,
        "sparklite.net.straggler_suspected": 1,
    },
    "workers": [
        {
            "name": "loopback-0",
            "alive": True,
            "inflight": 1,
            "tasks": 10,
            "ewma_ms": 4.2,
            "straggler": False,
            "bytes_out": 1024,
            "bytes_in": 512,
        },
        {
            "name": "loopback-1",
            "alive": True,
            "inflight": 0,
            "tasks": 6,
            "ewma_ms": 19.7,
            "straggler": True,
            "bytes_out": 1024,
            "bytes_in": 512,
        },
    ],
}


def test_render_serve_dashboard():
    text = render_dashboard(SERVE_SNAPSHOT)
    assert "serve @ 127.0.0.1:7227" in text
    assert "detectors: geo, osm" in text
    assert "requests: 120" in text
    assert "p50: 1.50" in text and "p99: 9.00" in text
    # No rates on the first refresh.
    assert "qps" not in text


def test_render_serve_dashboard_rates():
    previous = {
        "kind": "serve",
        "counters": {**SERVE_SNAPSHOT["counters"], "serve.requests": 100},
    }
    text = render_dashboard(SERVE_SNAPSHOT, previous=previous, interval=2.0)
    assert "qps: 10.0" in text


def test_render_netdriver_dashboard():
    text = render_dashboard(NET_SNAPSHOT)
    assert "netdriver @ 127.0.0.1:40001" in text
    assert "workers: 2" in text
    assert "stragglers: 1" in text
    lines = text.splitlines()
    row0 = next(line for line in lines if "loopback-0" in line)
    row1 = next(line for line in lines if "loopback-1" in line)
    assert "alive" in row0
    assert "SLOW" in row1  # straggler flag wins over alive
    assert "19.7" in row1


def test_render_netdriver_dashboard_rates():
    previous = {
        "kind": "netdriver",
        "counters": {
            **NET_SNAPSHOT["counters"],
            "sparklite.net.tasks": 10,
        },
    }
    text = render_dashboard(NET_SNAPSHOT, previous=previous, interval=3.0)
    assert "tasks/s: 2.0" in text
