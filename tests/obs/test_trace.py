"""Tracer correctness: nesting, exception safety, no-op mode."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import trace as trace_module


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing/profiling disabled."""
    obs.disable_tracing()
    obs.disable_profiling()
    yield
    obs.disable_tracing()
    obs.disable_profiling()


def test_spans_nest_and_record_depth():
    tracer = obs.Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("sibling"):
            pass
    spans = {record.name: record for record in tracer.spans()}
    assert spans["outer"].depth == 0
    assert spans["outer"].parent_id is None
    assert spans["inner"].depth == 1
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["sibling"].parent_id == spans["outer"].span_id
    assert all(record.duration_s >= 0.0 for record in spans.values())


def test_span_attrs_from_kwargs_and_set():
    tracer = obs.Tracer()
    with tracer.span("work", shards=4) as span:
        span.set("records", 17)
    (record,) = tracer.spans()
    assert record.attrs == {"shards": 4, "records": 17}


def test_exception_closes_span_and_propagates():
    tracer = obs.Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("boom")
    spans = {record.name: record for record in tracer.spans()}
    assert spans["inner"].error == "ValueError"
    assert spans["outer"].error == "ValueError"
    assert spans["inner"].duration_s >= 0.0
    # The tracer is reusable after the exception.
    with tracer.span("after"):
        pass
    assert "after" in {record.name for record in tracer.spans()}


def test_module_span_is_noop_without_enable():
    assert obs.span("anything") is obs.NOOP_SPAN
    # Even with an active tracer, the global switch must be on.
    tracer = obs.Tracer()
    with tracer.activate():
        assert obs.span("anything") is obs.NOOP_SPAN
    assert tracer.spans() == []


def test_module_span_is_noop_without_active_tracer():
    obs.enable_tracing()
    assert obs.span("anything") is obs.NOOP_SPAN


def test_module_span_records_into_active_tracer():
    obs.enable_tracing()
    tracer = obs.Tracer()
    with tracer.activate():
        with obs.span("fine.grained", detail=1):
            pass
    (record,) = tracer.spans()
    assert record.name == "fine.grained"
    assert record.attrs == {"detail": 1}


def test_innermost_activation_wins():
    obs.enable_tracing()
    outer, inner = obs.Tracer(), obs.Tracer()
    with outer.activate():
        with inner.activate():
            with obs.span("deep"):
                pass
        with obs.span("shallow"):
            pass
    assert [r.name for r in inner.spans()] == ["deep"]
    assert [r.name for r in outer.spans()] == ["shallow"]
    assert obs.current_tracer() is None


def test_spans_from_worker_threads_are_collected():
    obs.enable_tracing()
    tracer = obs.Tracer()

    def work(index: int) -> None:
        with obs.span(f"thread.{index}"):
            pass

    with tracer.activate():
        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    names = sorted(record.name for record in tracer.spans())
    assert names == [f"thread.{i}" for i in range(4)]
    # Worker-thread spans are top-level for their thread.
    assert all(record.depth == 0 for record in tracer.spans())


def test_phase_durations_sum_repeated_names():
    tracer = obs.Tracer()
    with tracer.span("phase"):
        pass
    with tracer.span("phase"):
        pass
    durations = tracer.phase_durations()
    assert set(durations) == {"phase"}
    assert durations["phase"] >= 0.0


def test_iter_tree_orders_preorder_by_start():
    tracer = obs.Tracer()
    with tracer.span("a"):
        with tracer.span("a.1"):
            pass
    with tracer.span("b"):
        pass
    ordering = [
        (depth, record.name)
        for depth, record in trace_module.iter_tree(tracer.spans())
    ]
    assert ordering == [(0, "a"), (1, "a.1"), (0, "b")]


def test_span_record_round_trips_through_dict():
    tracer = obs.Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("failing", attempt=2):
            raise RuntimeError
    (record,) = tracer.spans()
    clone = obs.SpanRecord.from_dict(record.to_dict())
    assert clone == record


def test_profiling_records_alloc_bytes():
    obs.enable_profiling()
    tracer = obs.Tracer()
    with tracer.span("alloc"):
        _ = [0] * 10_000
    (record,) = tracer.spans()
    assert record.alloc_bytes is not None


def test_noop_span_accepts_the_full_span_api():
    with obs.span("off") as span:
        span.set("key", "value")
        assert span.name == ""
