"""Tier-1 corpus replay: every committed witness must keep passing.

This is the permanent regression net for every divergence the fuzzer
ever found (and for the degenerate geometries the engines must agree
on by definition).  Each witness runs through the full differential
engine matrix against the brute-force oracle on every pytest
invocation — fast, seeded, no fuzz loop.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.qa import (
    DifferentialRunner,
    Witness,
    iter_corpus,
    load_witness,
    save_witness,
)

CORPUS_DIR = Path(__file__).parent / "corpus"
WITNESSES = sorted(iter_corpus(CORPUS_DIR), key=lambda w: w.name)


def test_corpus_is_not_empty():
    assert len(WITNESSES) >= 5


@pytest.mark.parametrize(
    "witness", WITNESSES, ids=[w.name for w in WITNESSES]
)
def test_witness_replays_clean(witness: Witness):
    runner = DifferentialRunner(emit_records=False)
    result = runner.run_case(witness.dataset())
    assert result.ok, "\n".join(str(d) for d in result.divergences)


def test_witness_roundtrip_preserves_float_bits(tmp_path):
    # Sub-ulp geometry must survive save/load exactly.
    points = np.array([[5e-17, np.nextafter(0.7, 0.0)], [0.0, 0.7]])
    path = save_witness(
        tmp_path, "bits", points, eps=0.7, min_pts=2, note="roundtrip"
    )
    loaded = load_witness(path)
    assert np.array_equal(
        loaded.points.view(np.uint64), points.view(np.uint64)
    )
    assert loaded.eps == 0.7
    assert loaded.min_pts == 2
    assert loaded.note == "roundtrip"


def test_known_bug_witnesses_are_present():
    names = {witness.name for witness in WITNESSES}
    assert {
        "exact_eps_across_boundary_ring",
        "int64_cell_overflow_rejected",
        "quotient_collapse_rejected",
        "same_cell_corner_ulp",
        "kernel_accumulation_order",
    } <= names
