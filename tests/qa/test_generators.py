"""Adversarial generators: determinism, kind coverage, geometry claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import MAX_ABS_CELL_COORD, cell_side_length
from repro.qa import GENERATOR_KINDS, generate_dataset


def test_same_seed_same_dataset_bit_for_bit():
    for seed in (0, 7, 223, 1828):
        first = generate_dataset(seed)
        second = generate_dataset(seed)
        assert first.kind == second.kind
        assert first.eps == second.eps
        assert first.min_pts == second.min_pts
        assert first.points.shape == second.points.shape
        # Bit-level equality, not approximate: sub-ulp jitter matters.
        assert np.array_equal(
            first.points.view(np.uint64), second.points.view(np.uint64)
        )


def test_seed_range_covers_every_kind():
    kinds = {generate_dataset(seed).kind for seed in range(120)}
    assert kinds == set(GENERATOR_KINDS)


@pytest.mark.parametrize("kind", sorted(GENERATOR_KINDS))
def test_forced_kind_is_respected(kind):
    dataset = generate_dataset(5, kind=kind)
    assert dataset.kind == kind
    assert dataset.points.ndim == 2
    assert dataset.eps > 0
    assert dataset.min_pts >= 1


def test_unknown_kind_rejected():
    with pytest.raises(KeyError):
        generate_dataset(0, kind="nope")


def test_boundary_lattice_sits_on_cell_edges():
    dataset = generate_dataset(3, kind="boundary_lattice")
    side = cell_side_length(dataset.eps, dataset.n_dims)
    # Every coordinate is within a sub-ulp jitter of a lattice node.
    remainder = dataset.points - np.round(dataset.points / side) * side
    assert np.abs(remainder).max() <= 1e-10


def test_huge_magnitude_occasionally_leaves_the_domain():
    in_domain = out_of_domain = 0
    for seed in range(300):
        dataset = generate_dataset(seed, kind="huge_magnitude")
        side = cell_side_length(dataset.eps, dataset.n_dims)
        extreme = float(np.abs(dataset.points).max())
        if extreme / side >= MAX_ABS_CELL_COORD:
            out_of_domain += 1
        else:
            in_domain += 1
    assert in_domain > 0 and out_of_domain > 0


def test_degenerate_sizes_appear():
    sizes = {
        generate_dataset(seed, kind="degenerate").n_points
        for seed in range(60)
    }
    assert 0 in sizes and 1 in sizes
