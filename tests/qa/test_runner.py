"""Differential runner: catches injected bugs, honors error semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import InMemorySink, recording
from repro.qa import AdversarialDataset, DifferentialRunner, generate_dataset
from repro.qa.runner import VARIANT_NAMES, _Outcome


def _dataset(points, eps=1.0, min_pts=2, kind="manual", seed=-1):
    return AdversarialDataset(
        kind=kind,
        seed=seed,
        points=np.asarray(points, dtype=np.float64),
        eps=eps,
        min_pts=min_pts,
    )


def test_all_variants_agree_on_simple_data():
    runner = DifferentialRunner(emit_records=False)
    result = runner.run_case(
        _dataset([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [9.0, 9.0]])
    )
    assert result.ok, [str(d) for d in result.divergences]


def test_unknown_variant_rejected():
    with pytest.raises(KeyError):
        DifferentialRunner(variants=("no_such_engine",))


def test_incremental_live_variant_is_opt_in_and_exact():
    from repro.qa.runner import ALL_VARIANT_NAMES

    assert "incremental_live" not in VARIANT_NAMES
    assert "incremental_live" in ALL_VARIANT_NAMES
    runner = DifferentialRunner(
        variants=("incremental_live",), emit_records=False
    )
    result = runner.run_case(
        _dataset([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [9.0, 9.0]])
    )
    assert result.ok, [str(d) for d in result.divergences]


def test_injected_label_bug_is_detected():
    runner = DifferentialRunner(
        variants=("vectorized_pruned",), emit_records=False
    )

    def buggy(points, eps, min_pts):
        n = points.shape[0]
        return _Outcome(
            core=np.zeros(n, dtype=bool),  # claims nobody is core
            outlier=np.ones(n, dtype=bool),
        )

    runner.variants["buggy"] = buggy
    result = runner.run_case(
        _dataset([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
    )
    divergent = {d.variant for d in result.divergences}
    assert divergent == {"buggy"}
    fields = {d.field for d in result.divergences}
    assert fields == {"core_mask", "outlier_mask"}


def test_count_preserving_label_swap_is_detected():
    # Same outlier COUNT, different points — the reason the runner
    # diffs full vectors rather than counts.
    runner = DifferentialRunner(variants=(), emit_records=False)

    def swapped(points, eps, min_pts):
        from repro.core.reference import brute_force_detect

        reference = brute_force_detect(points, eps, min_pts)
        outlier = reference.outlier_mask.copy()
        flipped = np.flatnonzero(outlier)[:1]
        keepers = np.flatnonzero(~outlier)[:1]
        outlier[flipped] = False
        outlier[keepers] = True
        return _Outcome(
            core=reference.core_mask.copy(), outlier=outlier
        )

    runner.variants["swapped"] = swapped
    result = runner.run_case(
        _dataset([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [9.0, 9.0]])
    )
    assert {d.field for d in result.divergences} == {"outlier_mask"}


def test_engine_error_when_reference_succeeds_is_divergence():
    from repro.exceptions import EngineError

    runner = DifferentialRunner(variants=(), emit_records=False)

    def exploding(points, eps, min_pts):
        raise EngineError("boom")

    runner.variants["exploding"] = exploding
    result = runner.run_case(_dataset([[0.0], [0.1], [0.2]]))
    assert len(result.divergences) == 1
    assert result.divergences[0].field == "error"


def test_uniform_rejection_is_not_a_divergence():
    # Out-of-domain coordinates: reference and every engine raise
    # DataValidationError; the runner treats that as agreement.
    runner = DifferentialRunner(emit_records=False)
    result = runner.run_case(
        _dataset([[9e18, 0.0], [-9e18, 0.0]], eps=0.5)
    )
    assert result.ok, [str(d) for d in result.divergences]


def test_variant_matrix_covers_every_engine_family():
    families = {name.split("_")[0] for name in VARIANT_NAMES}
    assert {
        "vectorized",
        "distributed",
        "incremental",
        "classify",
        "cellmap",
    } <= families


def test_run_seed_emits_reproducible_record():
    sink = InMemorySink()
    with recording(sink):
        runner = DifferentialRunner(
            variants=("vectorized_pruned",), emit_records=True
        )
        result = runner.run_seed(7)
    assert result.record is not None
    diff_records = [
        r for r in sink.records if r.engine == "qa.diff"
    ]
    assert len(diff_records) == 1
    context = diff_records[0].context
    assert context["seed"] == 7
    assert context["kind"] == generate_dataset(7).kind
    assert context["n_divergences"] == 0


def test_budget_stops_early():
    runner = DifferentialRunner(
        variants=("vectorized_pruned",), emit_records=False
    )
    results = runner.run_seeds(range(10_000), budget_s=0.5)
    assert 0 < len(results) < 10_000
