"""Greedy shrinker: minimizes failing datasets, preserves coordinates."""

from __future__ import annotations

import numpy as np

from repro.qa import AdversarialDataset, shrink_dataset, shrink_rows


def test_shrinks_to_the_two_essential_rows():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(40, 2))
    # "Failure" = rows 13 and 29 both present.
    a, b = points[13].copy(), points[29].copy()

    def still_failing(candidate):
        has_a = (candidate == a).all(axis=1).any()
        has_b = (candidate == b).all(axis=1).any()
        return bool(has_a and has_b)

    minimized = shrink_rows(points, still_failing)
    assert minimized.shape[0] == 2
    assert still_failing(minimized)


def test_rows_are_subset_in_original_order():
    points = np.arange(20, dtype=np.float64).reshape(10, 2)

    def still_failing(candidate):
        return candidate.shape[0] >= 3

    minimized = shrink_rows(points, still_failing)
    assert minimized.shape[0] == 3
    positions = [
        int(np.flatnonzero((points == row).all(axis=1))[0])
        for row in minimized
    ]
    assert positions == sorted(positions)


def test_never_returns_empty():
    points = np.zeros((5, 1))
    minimized = shrink_rows(points, lambda candidate: True)
    assert minimized.shape[0] == 1


def test_evaluation_cap_respected():
    points = np.arange(64, dtype=np.float64).reshape(64, 1)
    calls = 0

    def counting(candidate):
        nonlocal calls
        calls += 1
        return True

    shrink_rows(points, counting, max_evaluations=10)
    assert calls <= 10


def test_shrink_dataset_keeps_parameters_and_bits():
    points = np.array([[0.0], [5e-17], [0.7], [1.4], [100.0]])
    dataset = AdversarialDataset(
        kind="manual", seed=42, points=points, eps=0.7, min_pts=2
    )

    def still_failing(candidate):
        # Failure requires the sub-ulp row and the exact-eps row.
        rows = {row.tobytes() for row in candidate.points}
        return (
            np.array([5e-17]).tobytes() in rows
            and np.array([0.7]).tobytes() in rows
        )

    witness = shrink_dataset(dataset, still_failing)
    assert witness.eps == dataset.eps
    assert witness.min_pts == dataset.min_pts
    assert witness.seed == dataset.seed
    assert witness.points.shape[0] == 2
    assert np.array([5e-17]).tobytes() in {
        row.tobytes() for row in witness.points
    }
