"""Detector artifacts: save/load round trips and schema validation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import DBSCOUT
from repro.exceptions import ArtifactError
from repro.serve import (
    ARTIFACT_MAGIC,
    ARTIFACT_SCHEMA_VERSION,
    DetectorArtifact,
    fit_artifact,
    load_artifact,
    save_artifact,
)


@pytest.fixture
def fitted(clustered_2d):
    detector = DBSCOUT(eps=0.8, min_pts=10)
    result = detector.fit(clustered_2d)
    return detector, result, clustered_2d


def test_save_load_classify_round_trip(fitted, tmp_path, rng):
    detector, result, points = fitted
    path = save_artifact(detector.core_model_, tmp_path / "m.npz")
    loaded = load_artifact(path)
    # training-set equality is exact, not approximate
    np.testing.assert_array_equal(loaded.classify(points), result.labels())
    # out-of-sample queries agree with the in-memory model too
    queries = rng.uniform(-12.0, 16.0, size=(200, 2))
    np.testing.assert_array_equal(
        loaded.classify(queries), detector.classify(queries)
    )


def test_round_trip_preserves_model_fields(fitted, tmp_path):
    detector, _, points = fitted
    artifact = DetectorArtifact.from_model(
        detector.core_model_, name="geo", source="unit-test"
    )
    path = artifact.save(tmp_path / "geo")  # .npz appended
    assert path.suffix == ".npz"
    loaded = DetectorArtifact.load(path)
    assert loaded.name == "geo"
    assert loaded.metadata["source"] == "unit-test"
    assert loaded.model.eps == detector.core_model_.eps
    assert loaded.model.min_pts == detector.core_model_.min_pts
    assert loaded.model.n_train == points.shape[0]
    np.testing.assert_array_equal(
        loaded.model.core_points, detector.core_model_.core_points
    )
    np.testing.assert_array_equal(
        loaded.model.core_cells, detector.core_model_.core_cells
    )
    np.testing.assert_array_equal(
        loaded.model.core_starts, detector.core_model_.core_starts
    )


def test_fit_artifact_convenience(clustered_2d, tmp_path):
    artifact = fit_artifact(clustered_2d, eps=0.8, min_pts=10, name="demo")
    assert artifact.name == "demo"
    path = artifact.save(tmp_path / "demo.npz")
    assert load_artifact(path).name == "demo"


def test_header_contents(fitted):
    detector, _, points = fitted
    header = DetectorArtifact.from_model(detector.core_model_).header()
    assert header["magic"] == ARTIFACT_MAGIC
    assert header["schema_version"] == ARTIFACT_SCHEMA_VERSION
    assert header["eps"] == 0.8
    assert header["min_pts"] == 10
    assert header["n_train"] == points.shape[0]
    assert set(header["arrays"]) == {
        "core_points",
        "core_cells",
        "core_starts",
    }
    json.dumps(header)  # header is JSON-safe


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(ArtifactError, match="does not exist"):
        load_artifact(tmp_path / "nope.npz")


def test_load_non_artifact_npz_raises(tmp_path):
    path = tmp_path / "random.npz"
    np.savez(path, stuff=np.arange(4))
    with pytest.raises(ArtifactError, match="no header"):
        load_artifact(path)


def test_load_wrong_magic_raises(fitted, tmp_path):
    detector, _, _ = fitted
    path = _tampered_save(
        detector, tmp_path, lambda h: h.update(magic="something-else")
    )
    with pytest.raises(ArtifactError, match="not a DBSCOUT"):
        load_artifact(path)


def test_load_future_schema_version_raises(fitted, tmp_path):
    detector, _, _ = fitted
    path = _tampered_save(
        detector, tmp_path, lambda h: h.update(schema_version=99)
    )
    with pytest.raises(ArtifactError, match="schema version"):
        load_artifact(path)


def test_load_truncated_array_raises(fitted, tmp_path):
    detector, _, _ = fitted
    model = detector.core_model_
    artifact = DetectorArtifact.from_model(model)
    path = tmp_path / "cut.npz"
    # arrays shorter than the header manifest declares
    np.savez(
        path,
        header=np.frombuffer(
            json.dumps(artifact.header()).encode(), dtype=np.uint8
        ),
        core_points=model.core_points[:-1],
        core_cells=model.core_cells,
        core_starts=model.core_starts,
    )
    with pytest.raises(ArtifactError, match="truncated or tampered"):
        load_artifact(path)


def test_load_wrong_dtype_raises(fitted, tmp_path):
    detector, _, _ = fitted
    model = detector.core_model_
    artifact = DetectorArtifact.from_model(model)
    path = tmp_path / "dtype.npz"
    header = artifact.header()
    header["arrays"]["core_points"]["dtype"] = "float32"
    header["arrays"]["core_points"]["shape"] = list(
        model.core_points.shape
    )
    np.savez(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        core_points=model.core_points.astype(np.float32),
        core_cells=model.core_cells,
        core_starts=model.core_starts,
    )
    with pytest.raises(ArtifactError, match="dtype"):
        load_artifact(path)


def _tampered_save(detector, tmp_path, mutate):
    """Save an artifact whose header was altered by ``mutate``."""
    model = detector.core_model_
    artifact = DetectorArtifact.from_model(model)
    header = artifact.header()
    mutate(header)
    path = tmp_path / "tampered.npz"
    np.savez(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        core_points=model.core_points,
        core_cells=model.core_cells,
        core_starts=model.core_starts,
    )
    return path
