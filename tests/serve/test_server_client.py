"""TCP server + blocking client over a live event loop thread."""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro import DBSCOUT
from repro.exceptions import (
    DataValidationError,
    ServeError,
    UnknownDetectorError,
)
from repro.serve import OutlierClient, OutlierServer, OutlierService


class _ServerHarness:
    """Run an :class:`OutlierServer` on a background event loop."""

    def __init__(self, service: OutlierService) -> None:
        self.server = OutlierServer(service, port=0)
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._started.wait(timeout=10):  # pragma: no cover
            raise RuntimeError("server did not start")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self.loop
        ).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def served(clustered_2d):
    detector = DBSCOUT(eps=0.8, min_pts=10)
    result = detector.fit(clustered_2d)
    service = OutlierService()
    service.register("geo", detector.core_model_)
    harness = _ServerHarness(service)
    try:
        yield harness, result, clustered_2d
    finally:
        harness.stop()
        service.close()


def test_query_round_trip(served):
    harness, result, points = served
    with OutlierClient(port=harness.port) as client:
        labels = client.query("geo", points)
        np.testing.assert_array_equal(labels, result.labels())
        assert client.query_one("geo", [1000.0, 1000.0]) == 1


def test_ping_list_stats(served):
    harness, _, points = served
    with OutlierClient(port=harness.port) as client:
        assert client.ping() is True
        assert client.detectors() == ["geo"]
        client.query("geo", points[:20])
        stats = client.stats()
        assert stats["serve.requests"] >= 1
        assert stats["serve.models"] == ["geo"]


def test_unknown_detector_maps_to_library_exception(served):
    harness, _, _ = served
    with OutlierClient(port=harness.port) as client:
        with pytest.raises(UnknownDetectorError):
            client.query("nope", [[0.0, 0.0]])
        # one bad request does not poison the connection
        assert client.ping() is True


def test_dimension_mismatch_maps_to_validation_error(served):
    harness, _, _ = served
    with OutlierClient(port=harness.port) as client:
        with pytest.raises(DataValidationError):
            client.query("geo", [[0.0, 0.0, 0.0]])


def test_malformed_json_gets_error_response(served):
    harness, _, _ = served
    with socket.create_connection(
        ("127.0.0.1", harness.port), timeout=10
    ) as raw:
        raw.sendall(b"this is not json\n")
        reader = raw.makefile("rb")
        response = json.loads(reader.readline())
        assert response["ok"] is False
        assert "malformed JSON" in response["error"]
        # connection survives for the next (valid) request
        raw.sendall(b'{"op": "ping"}\n')
        assert json.loads(reader.readline())["ok"] is True


def test_unknown_op_is_rejected(served):
    harness, _, _ = served
    with OutlierClient(port=harness.port) as client:
        with pytest.raises(ServeError, match="unknown op"):
            client.call({"op": "explode"})


def test_request_ids_are_echoed(served):
    harness, _, _ = served
    with OutlierClient(port=harness.port) as client:
        first = client.call({"op": "ping"})
        second = client.call({"op": "ping"})
        assert second["id"] == first["id"] + 1


def test_connect_failure_raises_serve_error():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
    with pytest.raises(ServeError, match="could not connect"):
        OutlierClient(port=free_port, timeout=0.5)


def test_concurrent_clients_share_batches(served):
    harness, result, points = served
    errors: list[Exception] = []

    def worker(offset: int) -> None:
        try:
            with OutlierClient(port=harness.port) as client:
                chunk = points[offset : offset + 30]
                labels = client.query("geo", chunk)
                np.testing.assert_array_equal(
                    labels, result.labels()[offset : offset + 30]
                )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i * 30,)) for i in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert errors == []
