"""OutlierService: micro-batching, backpressure, deadlines, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBSCOUT, obs
from repro.exceptions import (
    DataValidationError,
    DeadlineExceededError,
    ServeError,
    ServiceOverloadedError,
    UnknownDetectorError,
)
from repro.serve import DetectorArtifact, OutlierService, QueryOutcome


@pytest.fixture
def fitted(clustered_2d):
    detector = DBSCOUT(eps=0.8, min_pts=10)
    result = detector.fit(clustered_2d)
    return detector, result, clustered_2d


@pytest.fixture
def service(fitted):
    detector, _, _ = fitted
    with OutlierService() as service:
        service.register("geo", detector.core_model_)
        yield service


def test_query_matches_fit_labels(service, fitted):
    _, result, points = fitted
    labels = service.query("geo", points)
    np.testing.assert_array_equal(labels, result.labels())
    stats = service.stats()
    assert stats["serve.requests"] == 1
    assert stats["serve.rows_classified"] == points.shape[0]
    assert stats["serve.latency_p50_ms"] > 0


def test_register_accepts_artifacts(fitted):
    detector, result, points = fitted
    artifact = DetectorArtifact.from_model(detector.core_model_)
    with OutlierService() as service:
        service.register("geo", artifact)
        np.testing.assert_array_equal(
            service.query("geo", points), result.labels()
        )


def test_register_rejects_non_models():
    with OutlierService() as service:
        with pytest.raises(ServeError, match="cannot register"):
            service.register("bad", object())


def test_unknown_detector_raises_synchronously(service):
    with pytest.raises(UnknownDetectorError):
        service.submit("nope", np.zeros((2, 2)))


def test_dimension_mismatch_raises_synchronously(service):
    with pytest.raises(DataValidationError):
        service.submit("geo", np.zeros((2, 5)))


def test_concurrent_requests_coalesce_into_one_batch(fitted):
    detector, result, points = fitted
    with OutlierService() as service:
        service.register("geo", detector.core_model_)
        service.pause()  # let requests pile up in the queue
        futures = [
            service.submit("geo", points[i * 30 : (i + 1) * 30])
            for i in range(5)
        ]
        service.resume()
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(
                future.result(timeout=10),
                result.labels()[i * 30 : (i + 1) * 30],
            )
        stats = service.stats()
        assert stats["serve.batches"] == 1  # all five coalesced
        assert stats["serve.last_batch_rows"] == 150
        assert stats["serve.queue_depth_peak"] == 5


def test_max_batch_rows_splits_batches(fitted):
    detector, result, points = fitted
    with OutlierService(max_batch_rows=60) as service:
        service.register("geo", detector.core_model_)
        service.pause()
        futures = [
            service.submit("geo", points[i * 30 : (i + 1) * 30])
            for i in range(4)
        ]
        service.resume()
        for future in futures:
            future.result(timeout=10)
        assert service.stats()["serve.batches"] == 2


def test_backpressure_rejects_when_queue_full(fitted):
    detector, _, points = fitted
    with OutlierService(max_queue=2) as service:
        service.register("geo", detector.core_model_)
        service.pause()
        service.submit("geo", points[:5])
        service.submit("geo", points[5:10])
        with pytest.raises(ServiceOverloadedError):
            service.submit("geo", points[10:15])
        assert service.stats()["serve.rejected_overload"] == 1
        service.resume()


def test_deadline_exceeded_while_paused(fitted):
    detector, _, points = fitted
    with OutlierService() as service:
        service.register("geo", detector.core_model_)
        service.pause()
        future = service.submit("geo", points[:5], timeout=0.0)
        fresh = service.submit("geo", points[5:10])  # no deadline
        import time

        time.sleep(0.02)  # let the zero deadline lapse
        service.resume()
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=10)
        assert fresh.result(timeout=10).shape == (5,)
        assert service.stats()["serve.deadline_exceeded"] == 1


def test_lru_eviction_beyond_max_models(fitted):
    detector, _, _ = fitted
    model = detector.core_model_
    with OutlierService(max_models=2) as service:
        service.register("a", model)
        service.register("b", model)
        service.model("a")  # touch: "b" becomes least recently used
        service.register("c", model)
        assert service.detectors() == ["a", "c"]
        with pytest.raises(UnknownDetectorError):
            service.model("b")
        assert service.stats()["serve.models_evicted"] == 1


def test_query_outcome_reports_serving_facts(service, fitted):
    _, result, points = fitted
    outcome = service.query_outcome("geo", points)
    assert isinstance(outcome, QueryOutcome)
    np.testing.assert_array_equal(outcome.labels, result.labels())
    assert outcome.batch_rows == points.shape[0]
    assert outcome.latency_s > 0
    assert outcome.n_outliers == result.n_outliers


def test_batches_emit_run_records_when_sinks_installed(service, fitted):
    _, result, points = fitted
    with obs.recording() as sink:
        service.query("geo", points)
    assert len(sink.records) == 1
    record = sink.records[0]
    assert record.engine == "serve"
    assert record.context["detector"] == "geo"
    assert record.context["batch_rows"] == points.shape[0]
    assert any(
        span["name"] == "serve.batch" for span in record.spans
    )
    assert record.counters.get("serve.cells_settled_core", 0) > 0


def test_no_records_without_sinks(service, fitted):
    _, _, points = fitted
    with obs.recording() as sink:
        pass  # recording scope closed before the query
    service.query("geo", points)
    assert sink.records == []


def test_close_fails_pending_and_rejects_new(fitted):
    detector, _, points = fitted
    service = OutlierService()
    service.register("geo", detector.core_model_)
    service.pause()
    future = service.submit("geo", points[:5])
    service.close()
    with pytest.raises(ServeError, match="closed"):
        future.result(timeout=10)
    with pytest.raises(ServeError, match="closed"):
        service.submit("geo", points[:5])
    with pytest.raises(ServeError, match="closed"):
        service.register("geo2", detector.core_model_)
    service.close()  # idempotent


def test_constructor_validates_bounds():
    with pytest.raises(ServeError):
        OutlierService(max_models=0)
    with pytest.raises(ServeError):
        OutlierService(max_queue=-1)
    with pytest.raises(ServeError):
        OutlierService(max_batch_rows=0)


def test_batch_wait_coalesces_trickled_requests(fitted):
    detector, _, points = fitted
    with OutlierService(batch_wait_s=0.05) as service:
        service.register("geo", detector.core_model_)
        labels = service.query("geo", points[:10])
        assert labels.shape == (10,)


def test_non_positive_timeout_fails_at_submit(fitted):
    detector, _, points = fitted
    with OutlierService() as service:
        service.register("geo", detector.core_model_)
        service.pause()  # nothing gets picked up
        future = service.submit("geo", points[:5], timeout=0.0)
        assert future.done()  # failed synchronously, never enqueued
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=0)
        negative = service.submit("geo", points[:5], timeout=-1.0)
        with pytest.raises(DeadlineExceededError):
            negative.result(timeout=0)
        stats = service.stats()
        assert stats["serve.deadline_exceeded"] == 2
        assert stats["serve.queue_depth"] == 0  # no queue slot consumed
        service.resume()


def test_close_drain_counts_expired_deadlines(fitted):
    import time

    detector, _, points = fitted
    service = OutlierService()
    service.register("geo", detector.core_model_)
    service.pause()
    expired = service.submit("geo", points[:5], timeout=0.005)
    fresh = service.submit("geo", points[5:10])  # no deadline
    time.sleep(0.02)  # let the first deadline lapse while queued
    service.close()
    with pytest.raises(DeadlineExceededError):
        expired.result(timeout=10)
    with pytest.raises(ServeError, match="closed"):
        fresh.result(timeout=10)
    assert service.stats()["serve.deadline_exceeded"] == 1


def test_empty_query_batch_returns_empty_labels(fitted):
    detector, _, _ = fitted
    with OutlierService() as service:
        service.register("geo", detector.core_model_)
        labels = service.query("geo", np.zeros((0, 2)))
        assert labels.shape == (0,)
        assert labels.dtype == np.int64
        # 1-D empties and plain lists resolve the same way.
        assert service.query("geo", np.array([])).shape == (0,)
        assert service.query("geo", []).shape == (0,)
