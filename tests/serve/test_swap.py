"""Atomic hot swap: versioning, the re-register race, zero downtime.

The acceptance property for streaming serving: a model version can be
installed under a live name while classify traffic is in flight, and
no query is ever dropped, blocked, or answered by a half-installed
model.  The soak test at the bottom performs 500+ hot-swaps under
continuous classify load and requires zero failures.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import DBSCOUT
from repro.exceptions import (
    DataValidationError,
    ServeError,
    UnknownDetectorError,
)
from repro.serve import OutlierService
from repro.stream import LiveDetector, StreamCoordinator


def _model(points, eps=0.8, min_pts=10):
    detector = DBSCOUT(eps=eps, min_pts=min_pts)
    detector.fit(points)
    return detector.core_model_


@pytest.fixture
def two_models(clustered_2d, rng):
    shifted = clustered_2d + np.array([100.0, 100.0])
    return _model(clustered_2d), _model(shifted)


def test_swap_installs_new_version(two_models, clustered_2d):
    old, new = two_models
    with OutlierService() as service:
        assert service.register("geo", old) == 1
        assert service.swap("geo", new) == 2
        # The probe sits inside the OLD cluster: the swapped model
        # (fit 100 units away) must label it an outlier.
        labels = service.query("geo", clustered_2d[:1])
        assert labels.tolist() == [1]
        assert service.stats()["serve.versions"] == {"geo": 2}


def test_reregister_is_counted_as_swap(two_models):
    old, new = two_models
    with OutlierService() as service:
        service.register("geo", old)
        assert service.register("geo", new) == 2
        status = service.swap_status()
        assert status["versions"] == {"geo": 2}
        assert status["swaps"] == 1
        assert status["reregisters"] == 1
        assert status["max_latency_ms"] >= status["last_latency_ms"] > 0


def test_swap_status_unknown_name_raises(two_models):
    old, _ = two_models
    with OutlierService() as service:
        service.register("geo", old)
        with pytest.raises(UnknownDetectorError):
            service.swap_status("nope")
        assert service.swap_status("geo")["versions"] == {"geo": 1}


def test_swap_rejects_non_models():
    with OutlierService() as service:
        with pytest.raises(ServeError):
            service.swap("geo", object())


def test_eviction_resets_version_counter(two_models):
    old, new = two_models
    with OutlierService(max_models=1) as service:
        service.register("a", old)
        service.swap("a", new)
        service.register("b", old)  # evicts "a" and its version
        assert service.swap_status()["versions"] == {"b": 1}
        assert service.register("a", old) == 1


def test_reregister_race_does_not_sink_inflight_batch(two_models):
    """Requests queued against the old model classify against the new
    one — replacement is atomic w.r.t. the coalesced batch."""
    old, new = two_models
    with OutlierService() as service:
        service.register("geo", old)
        service.pause()
        probe = np.array([[0.0, 0.0], [100.0, 100.0]])
        futures = [service.submit("geo", probe) for _ in range(4)]
        service.register("geo", new)  # the historical race window
        service.resume()
        for future in futures:
            labels = future.result(timeout=5.0)
            # Answered by exactly the new model: (0,0) is 100 units
            # from its cluster, (100,100) is inside it.
            assert labels.tolist() == [1, 0]


def test_dims_mismatch_after_swap_fails_only_stale_requests(
    clustered_2d, clustered_3d
):
    model_2d = _model(clustered_2d)
    model_3d = _model(clustered_3d, eps=1.0)
    with OutlierService() as service:
        service.register("geo", model_2d)
        service.pause()
        stale = service.submit("geo", clustered_2d[:3])
        service.swap("geo", model_3d)
        fresh = service.submit("geo", clustered_3d[:3])
        service.resume()
        with pytest.raises(DataValidationError):
            stale.result(timeout=5.0)
        assert fresh.result(timeout=5.0).shape == (3,)
        assert service.stats()["serve.swap.dims_mismatch"] == 1


def test_hot_swap_soak_zero_downtime(rng):
    """≥500 hot-swaps under continuous classify load: zero failed or
    dropped queries, and the final snapshot is bit-identical to a
    batch fit over the active window."""
    eps, min_pts = 0.5, 4
    with OutlierService(max_queue=8192) as service:
        live = LiveDetector(eps, min_pts, window=120, name="soak")
        coordinator = StreamCoordinator(
            live, service, name="soak", every_points=1
        )
        coordinator.ingest(rng.normal(0.0, 0.4, size=(120, 2)))
        probes = rng.normal(0.0, 2.0, size=(8, 2))
        stop = threading.Event()
        failures: list[Exception] = []
        answered = [0, 0, 0, 0]

        def hammer(slot: int) -> None:
            while not stop.is_set():
                try:
                    labels = service.query("soak", probes)
                    assert labels.shape == (probes.shape[0],)
                    answered[slot] += 1
                except Exception as exc:  # noqa: BLE001 - soak gate
                    failures.append(exc)
                    return

        threads = [
            threading.Thread(target=hammer, args=(slot,), daemon=True)
            for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        while coordinator.n_swaps < 500 and not failures:
            coordinator.ingest(rng.normal(0.0, 0.4, size=(4, 2)))
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

        assert failures == []
        assert coordinator.n_swaps >= 500
        assert all(count > 0 for count in answered)
        assert service.swap_status("soak")["swaps"] >= 500

        # Snapshot exactness after the churn: the served model equals
        # a batch fit over the currently-active window.
        active = live.active_points()
        batch = DBSCOUT(eps=eps, min_pts=min_pts).fit(active)
        snapshot = live.snapshot()
        assert np.array_equal(
            snapshot.model.classify(active),
            batch.outlier_mask.astype(np.int64),
        )
