"""Telemetry exposition of the serving front-end + ``repro top``."""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request

import pytest

from repro import DBSCOUT
from repro.cli import main
from repro.obs.top import fetch_telemetry
from repro.serve import OutlierClient, OutlierServer, OutlierService


class _Harness:
    """An :class:`OutlierServer` (with metrics HTTP) on its own loop."""

    def __init__(self, service: OutlierService) -> None:
        self.server = OutlierServer(service, port=0, metrics_port=0)
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._started.wait(timeout=10):  # pragma: no cover
            raise RuntimeError("server did not start")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self.loop
        ).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def served(clustered_2d):
    detector = DBSCOUT(eps=0.8, min_pts=10)
    detector.fit(clustered_2d)
    service = OutlierService()
    service.register("geo", detector.core_model_)
    harness = _Harness(service)
    try:
        yield harness, clustered_2d
    finally:
        harness.stop()
        service.close()


def test_telemetry_op_over_tcp(served):
    harness, points = served
    with OutlierClient("127.0.0.1", harness.server.port) as client:
        client.query("geo", points[:40])
        telemetry = client.telemetry()
    assert telemetry["kind"] == "serve"
    assert telemetry["detectors"] == ["geo"]
    assert telemetry["port"] == harness.server.port
    counters = telemetry["counters"]
    assert counters["serve.requests"] == 1
    assert counters["serve.rows_classified"] == 40
    assert "serve.latency_p50_ms" in counters
    # Non-numeric stats entries never leak into counters.
    assert "serve.models" not in counters
    assert "# TYPE repro_serve_requests counter" in telemetry["text"]
    assert "repro_serve_latency_p50_ms" in telemetry["text"]


def test_fetch_telemetry_helper(served):
    harness, points = served
    with OutlierClient("127.0.0.1", harness.server.port) as client:
        client.query("geo", points[:10])
    snapshot = fetch_telemetry("127.0.0.1", harness.server.port)
    assert snapshot["kind"] == "serve"
    assert snapshot["counters"]["serve.rows_classified"] == 10


def test_metrics_http_listener(served):
    harness, points = served
    with OutlierClient("127.0.0.1", harness.server.port) as client:
        client.query("geo", points[:25])
    port = harness.server.metrics_http.port
    body = urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics"
    ).read().decode()
    assert "# HELP repro_serve_requests" in body
    assert "repro_serve_rows_classified 25" in body
    decoded = json.loads(
        urllib.request.urlopen(
            f"http://127.0.0.1:{port}/telemetry"
        ).read()
    )
    assert decoded["kind"] == "serve"
    assert decoded["counters"]["serve.rows_classified"] == 25


def test_cli_top_once(served, capsys):
    harness, points = served
    with OutlierClient("127.0.0.1", harness.server.port) as client:
        client.query("geo", points[:15])
    code = main(
        [
            "top",
            "--connect",
            f"127.0.0.1:{harness.server.port}",
            "--once",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "serve @ 127.0.0.1" in out
    assert "detectors: geo" in out
    assert "requests: 1" in out
    assert "p50:" in out
    # --once never emits the screen-clear escape.
    assert "\x1b[2J" not in out


def test_cli_top_rejects_bad_connect(capsys):
    assert main(["top", "--connect", "nonsense", "--once"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err
