"""CellPartitioner: spatial block routing, co-partitioning, engine use."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributed import DistributedEngine
from repro.exceptions import ParameterError, ShuffleError
from repro.sparklite import CellPartitioner, Context, HashPartitioner


class TestRouting:
    def test_same_block_same_shard(self):
        partitioner = CellPartitioner(8, block_bits=2)
        # All 16 cells of the block at origin (coords 0..3 per axis).
        shards = {
            partitioner.partition_for((x, y))
            for x in range(4)
            for y in range(4)
        }
        assert len(shards) == 1

    def test_blocks_spread_over_shards(self):
        partitioner = CellPartitioner(8, block_bits=0)
        shards = {
            partitioner.partition_for((x, y))
            for x in range(16)
            for y in range(16)
        }
        assert len(shards) == 8

    def test_deterministic_and_in_range(self):
        partitioner = CellPartitioner(5, block_bits=1)
        for key in [(-7, 3), (0, 0), (123, -456), (9,), (1, 2, 3)]:
            first = partitioner.partition_for(key)
            assert first == partitioner.partition_for(key)
            assert 0 <= first < 5

    def test_negative_coordinates_block(self):
        partitioner = CellPartitioner(4, block_bits=2)
        # Arithmetic shift: -1 >> 2 == -1, so (-1, -1) and (-4, -4)
        # share the block just below the origin.
        assert partitioner.block_of((-1, -1)) == (-1, -1)
        assert partitioner.block_of((-4, -4)) == (-1, -1)
        assert partitioner.partition_for(
            (-1, -1)
        ) == partitioner.partition_for((-4, -4))

    def test_rejects_non_integer_tuple_keys(self):
        partitioner = CellPartitioner(4)
        for bad in [3, "cell", (1.5, 2), [1, 2], ("a", "b")]:
            with pytest.raises(ShuffleError):
                partitioner.partition_for(bad)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            CellPartitioner(0)
        with pytest.raises(ParameterError):
            CellPartitioner(4, block_bits=-1)

    def test_equality_and_hash(self):
        assert CellPartitioner(4, 2) == CellPartitioner(4, 2)
        assert CellPartitioner(4, 2) != CellPartitioner(4, 3)
        assert CellPartitioner(4, 2) != CellPartitioner(8, 2)
        assert CellPartitioner(4, 2) != HashPartitioner(4)
        assert hash(CellPartitioner(4, 2)) == hash(CellPartitioner(4, 2))


class TestCoPartitioning:
    def test_parallelize_routes_by_partitioner(self):
        with Context(default_parallelism=4) as context:
            partitioner = CellPartitioner(4)
            data = [((x, y), x + y) for x in range(8) for y in range(8)]
            rdd = context.parallelize(data, 4, partitioner=partitioner)
            assert rdd.partitioner == partitioner
            for index, partition in enumerate(rdd.glom().collect()):
                for key, _value in partition:
                    assert partitioner.partition_for(key) == index

    def test_co_partitioned_group_by_key_skips_shuffle(self):
        with Context(default_parallelism=4) as context:
            partitioner = CellPartitioner(4)
            data = [((x, y), x) for x in range(8) for y in range(8)]
            rdd = context.parallelize(data, 4, partitioner=partitioner)
            before = context.metrics.shuffles
            grouped = rdd.group_by_key(partitioner=partitioner).collect()
            assert context.metrics.shuffles == before
            assert len(grouped) == 64
            # Contrast: grouping without co-partitioning does shuffle.
            plain = context.parallelize(data, 4)
            plain.group_by_key(partitioner=partitioner).collect()
            assert context.metrics.shuffles == before + 1


class TestEngineIntegration:
    @staticmethod
    def _points():
        rng = np.random.default_rng(11)
        return np.vstack(
            [
                rng.normal(0.0, 0.25, (240, 2)),
                rng.uniform(-4.0, 4.0, (24, 2)),
            ]
        )

    def test_cells_matches_rows_bit_identical(self):
        points = self._points()
        rows = DistributedEngine(num_partitions=4).detect(points, 0.4, 8)
        cells = DistributedEngine(
            num_partitions=4, partitioner="cells"
        ).detect(points, 0.4, 8)
        np.testing.assert_array_equal(
            cells.outlier_mask, rows.outlier_mask
        )
        np.testing.assert_array_equal(cells.core_mask, rows.core_mask)

    def test_cells_reduces_shuffle_traffic(self):
        points = self._points()
        rows = DistributedEngine(
            num_partitions=4, join_strategy="group"
        ).detect(points, 0.4, 8)
        cells = DistributedEngine(
            num_partitions=4, join_strategy="group", partitioner="cells"
        ).detect(points, 0.4, 8)
        assert (
            cells.stats["records_shuffled"]
            < rows.stats["records_shuffled"]
        )
        assert cells.stats["shuffles"] <= rows.stats["shuffles"]
        assert cells.stats["partitioner"] == "cells"
        assert rows.stats["partitioner"] == "rows"

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ParameterError):
            DistributedEngine(num_partitions=2, partitioner="hilbert")
