"""Tests for RDD checkpointing (lineage truncation)."""

import pytest

from repro.sparklite import Context


@pytest.fixture
def ctx() -> Context:
    return Context(default_parallelism=3)


class TestCheckpoint:
    def test_data_preserved(self, ctx):
        rdd = ctx.parallelize(range(20)).map(lambda x: x * 2)
        checkpointed = rdd.checkpoint()
        assert checkpointed.collect() == rdd.collect()

    def test_lineage_severed(self, ctx):
        deep = ctx.parallelize(range(10))
        for _ in range(5):
            deep = deep.map(lambda x: x + 1)
        assert len(deep.to_debug_string().splitlines()) == 6
        flat = deep.checkpoint()
        assert len(flat.to_debug_string().splitlines()) == 1

    def test_no_recompute_after_checkpoint(self, ctx):
        calls = []

        def trace(x):
            calls.append(x)
            return x

        checkpointed = ctx.parallelize(range(5), 1).map(trace).checkpoint()
        n_calls = len(calls)
        checkpointed.collect()
        checkpointed.collect()
        assert len(calls) == n_calls  # ancestors never re-run

    def test_partitioner_preserved(self, ctx):
        shuffled = ctx.parallelize([("a", 1), ("b", 2)]).partition_by(4)
        checkpointed = shuffled.checkpoint()
        assert checkpointed.partitioner == shuffled.partitioner
        # Co-partitioned join elision still applies.
        assert checkpointed.partition_by(4) is checkpointed

    def test_downstream_transformations_work(self, ctx):
        base = ctx.parallelize(range(10)).map(lambda x: (x % 3, x))
        counts = dict(
            base.checkpoint()
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert counts == {0: 18, 1: 12, 2: 15}

    def test_partition_count_preserved(self, ctx):
        rdd = ctx.parallelize(range(10), 5)
        assert rdd.checkpoint().num_partitions == 5
