"""Tests for the cluster memory model (simulated executor OOMs)."""

import numpy as np
import pytest

from repro.exceptions import ExecutorMemoryError, ParameterError
from repro.sparklite import Context
from repro.sparklite.cluster import (
    CONFIGURATION_1,
    CONFIGURATION_2,
    ClusterConfig,
    MemoryModel,
    estimate_size,
)


class TestEstimateSize:
    def test_numpy_array_buffer(self):
        array = np.zeros(1000, dtype=np.float64)
        assert estimate_size(array) == pytest.approx(8000, abs=200)

    def test_list_extrapolation(self):
        small = estimate_size(list(range(100)))
        large = estimate_size(list(range(10_000)))
        assert large == pytest.approx(100 * small, rel=0.3)

    def test_dict_scales_with_entries(self):
        small = estimate_size({i: float(i) for i in range(100)})
        large = estimate_size({i: float(i) for i in range(5000)})
        assert large > 10 * small

    def test_nested_structures(self):
        nested = [[float(i)] * 10 for i in range(100)]
        assert estimate_size(nested) > estimate_size([0.0] * 100)

    def test_custom_object_attributes_counted(self):
        class Holder:
            def __init__(self):
                self.payload = np.zeros(100_000)

        assert estimate_size(Holder()) > 700_000

    def test_empty_containers(self):
        assert estimate_size([]) > 0
        assert estimate_size({}) > 0


class TestClusterConfig:
    def test_totals(self):
        assert CONFIGURATION_1.total_cores == 100
        assert CONFIGURATION_2.total_cores == 100
        assert (
            CONFIGURATION_1.total_memory == CONFIGURATION_2.total_memory
        )  # same pool, different layout (Section IV-A3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_executors": 0, "cores_per_executor": 1, "memory_per_executor": 1},
            {"n_executors": 1, "cores_per_executor": 0, "memory_per_executor": 1},
            {"n_executors": 1, "cores_per_executor": 1, "memory_per_executor": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            ClusterConfig(**kwargs)


class TestMemoryModel:
    def test_broadcast_charged_to_every_executor(self):
        model = MemoryModel(ClusterConfig(4, 1, 1000, name="t"))
        model.charge_broadcast(600)
        with pytest.raises(ExecutorMemoryError):
            model.charge_broadcast(600)

    def test_release_credits_back(self):
        model = MemoryModel(ClusterConfig(4, 1, 1000, name="t"))
        model.charge_broadcast(800)
        model.release_broadcast(800)
        model.charge_broadcast(900)  # fits again

    def test_shuffle_charged_per_owner(self):
        model = MemoryModel(ClusterConfig(2, 1, 1000, name="t"))
        # Bucket 0 -> executor 0, bucket 1 -> executor 1, bucket 2 -> 0.
        model.charge_shuffle([400, 100, 500])
        assert model.peak_executor_bytes == 900

    def test_shuffles_do_not_accumulate(self):
        model = MemoryModel(ClusterConfig(1, 1, 1000, name="t"))
        model.charge_shuffle([800])
        model.charge_shuffle([800])  # previous shuffle spilled

    def test_shuffle_plus_broadcast_overflow(self):
        model = MemoryModel(ClusterConfig(1, 1, 1000, name="t"))
        model.charge_broadcast(600)
        with pytest.raises(ExecutorMemoryError):
            model.charge_shuffle([600])

    def test_repr(self):
        model = MemoryModel(ClusterConfig(1, 1, 1000, name="t"))
        assert "budget=1000B" in repr(model)


class TestEngineUnderBudgets:
    def test_context_without_cluster_is_unbounded(self):
        ctx = Context(default_parallelism=2)
        ctx.broadcast(list(range(100_000)))  # no model, no limit
        assert ctx.memory_model is None

    def test_oom_propagates_from_broadcast(self):
        ctx = Context(
            default_parallelism=2,
            cluster=ClusterConfig(2, 1, 5_000, name="tiny"),
        )
        with pytest.raises(ExecutorMemoryError):
            ctx.broadcast(list(range(10_000)))

    def test_oom_propagates_from_shuffle(self):
        ctx = Context(
            default_parallelism=2,
            cluster=ClusterConfig(2, 1, 20_000, name="tiny"),
        )
        pairs = [(i % 2, float(i)) for i in range(5_000)]
        with pytest.raises(ExecutorMemoryError):
            ctx.parallelize(pairs).group_by_key().collect()

    def test_dbscout_runs_within_generous_budget(self, clustered_2d):
        from repro.core.distributed import DistributedEngine
        from repro.core.vectorized import detect as batch_detect

        ctx = Context(
            default_parallelism=4,
            cluster=ClusterConfig(4, 1, 64 * 1024 * 1024, name="wide"),
        )
        engine = DistributedEngine(num_partitions=4, context=ctx)
        result = engine.detect(clustered_2d, 0.8, 8)
        expected = batch_detect(clustered_2d, 0.8, 8)
        assert np.array_equal(result.outlier_mask, expected.outlier_mask)
        assert ctx.memory_model.peak_executor_bytes > 0

    def test_broadcast_join_needs_more_memory_than_group_join(self):
        """Section III-G1's warning, measured: the broadcast join ships
        the whole points-to-check table to every executor, so its peak
        per-executor footprint exceeds the grouped join's."""
        from repro.core.distributed import DistributedEngine
        from repro.datasets import make_openstreetmap_like

        points = make_openstreetmap_like(4_000, seed=2)
        unbounded = ClusterConfig(8, 1, 10**12, name="unbounded")
        peaks = {}
        for strategy in ("group", "broadcast"):
            ctx = Context(default_parallelism=8, cluster=unbounded)
            engine = DistributedEngine(
                num_partitions=8, join_strategy=strategy, context=ctx
            )
            engine.detect(points, 2.5e5, 10)
            peaks[strategy] = ctx.memory_model.peak_executor_bytes
        assert peaks["broadcast"] > peaks["group"]

    def test_dbscout_consistent_across_paper_configurations(self):
        """Section IV-A3's DBSCOUT claim: identical results under both
        cluster layouts (the scaled configuration presets), with the
        per-executor footprint within both budgets at this scale."""
        from repro.core.distributed import DistributedEngine
        from repro.datasets import make_openstreetmap_like

        points = make_openstreetmap_like(2_000, seed=9)
        masks = []
        for config in (CONFIGURATION_1, CONFIGURATION_2):
            ctx = Context(default_parallelism=8, cluster=config)
            result = DistributedEngine(
                num_partitions=8, context=ctx
            ).detect(points, 1.0e6, 10)
            masks.append(result.outlier_mask)
            assert (
                ctx.memory_model.peak_executor_bytes
                <= config.memory_per_executor
            )
        assert np.array_equal(masks[0], masks[1])

    def test_broadcast_join_ooms_where_group_survives(self):
        """A budget between the two strategies' peaks reproduces the
        paper's 'broadcast join may generate out-of-memory errors'."""
        from repro.core.distributed import DistributedEngine
        from repro.datasets import make_openstreetmap_like

        points = make_openstreetmap_like(4_000, seed=2)
        unbounded = ClusterConfig(8, 1, 10**12, name="unbounded")
        peaks = {}
        for strategy in ("group", "broadcast"):
            ctx = Context(default_parallelism=8, cluster=unbounded)
            DistributedEngine(
                num_partitions=8, join_strategy=strategy, context=ctx
            ).detect(points, 2.5e5, 10)
            peaks[strategy] = ctx.memory_model.peak_executor_bytes
        budget = (peaks["group"] + peaks["broadcast"]) // 2
        tight = ClusterConfig(8, 1, budget, name="tight")

        ctx = Context(default_parallelism=8, cluster=tight)
        DistributedEngine(
            num_partitions=8, join_strategy="group", context=ctx
        ).detect(points, 2.5e5, 10)  # completes

        ctx = Context(default_parallelism=8, cluster=tight)
        with pytest.raises(ExecutorMemoryError):
            DistributedEngine(
                num_partitions=8, join_strategy="broadcast", context=ctx
            ).detect(points, 2.5e5, 10)
