"""Tests for Context scheduling, broadcasts, accumulators, and metrics."""

import pytest

from repro.exceptions import BroadcastError, SparkLiteError
from repro.sparklite import Context, HashPartitioner


class TestContext:
    def test_invalid_parallelism(self):
        with pytest.raises(SparkLiteError):
            Context(default_parallelism=0)

    def test_invalid_workers(self):
        with pytest.raises(SparkLiteError):
            Context(max_workers=0)

    def test_default_parallelism_used(self):
        ctx = Context(default_parallelism=6)
        assert ctx.parallelize(range(12)).num_partitions == 6

    def test_threaded_matches_sequential(self):
        data = list(range(1000))
        sequential = (
            Context(default_parallelism=8, max_workers=1)
            .parallelize(data)
            .map(lambda x: x * x)
            .collect()
        )
        threaded = (
            Context(default_parallelism=8, max_workers=4)
            .parallelize(data)
            .map(lambda x: x * x)
            .collect()
        )
        assert sequential == threaded

    def test_threaded_shuffle_correct(self):
        ctx = Context(default_parallelism=8, max_workers=4)
        pairs = [(i % 10, 1) for i in range(500)]
        counts = dict(
            ctx.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect()
        )
        assert counts == {k: 50 for k in range(10)}

    def test_repr(self):
        assert "max_workers=2" in repr(Context(max_workers=2))


class TestBroadcast:
    def test_value_accessible(self):
        ctx = Context()
        broadcast = ctx.broadcast({"a": 1})
        assert broadcast.value == {"a": 1}

    def test_destroy(self):
        ctx = Context()
        broadcast = ctx.broadcast([1, 2, 3])
        broadcast.destroy()
        with pytest.raises(BroadcastError):
            _ = broadcast.value

    def test_unique_ids(self):
        ctx = Context()
        assert ctx.broadcast(1).id != ctx.broadcast(2).id

    def test_used_inside_tasks(self):
        ctx = Context(default_parallelism=3)
        lookup = ctx.broadcast({1: "one", 2: "two"})
        result = (
            ctx.parallelize([1, 2, 1])
            .map(lambda x: lookup.value[x])
            .collect()
        )
        assert result == ["one", "two", "one"]

    def test_metrics_counted(self):
        ctx = Context()
        ctx.broadcast(1)
        ctx.broadcast(2)
        assert ctx.metrics.broadcasts == 2

    def test_repr(self):
        ctx = Context()
        broadcast = ctx.broadcast(1)
        assert "live" in repr(broadcast)
        broadcast.destroy()
        assert "destroyed" in repr(broadcast)


class TestAccumulator:
    def test_sum_accumulator(self):
        ctx = Context(default_parallelism=4)
        acc = ctx.accumulator(0)
        ctx.parallelize(range(10)).for_each(acc.add)
        assert acc.value == 45

    def test_custom_combine(self):
        ctx = Context()
        acc = ctx.accumulator(0, combine=max)
        for value in (3, 9, 1):
            acc.add(value)
        assert acc.value == 9

    def test_thread_safety(self):
        import threading

        ctx = Context()
        acc = ctx.accumulator(0)

        def worker():
            for _ in range(1000):
                acc.add(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert acc.value == 8000


class TestHashPartitioner:
    def test_deterministic(self):
        partitioner = HashPartitioner(4)
        assert partitioner.partition_for("key") == partitioner.partition_for(
            "key"
        )

    def test_in_range(self):
        partitioner = HashPartitioner(7)
        assert all(
            0 <= partitioner.partition_for(k) < 7 for k in range(1000)
        )

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)
        assert hash(HashPartitioner(4)) == hash(HashPartitioner(4))

    def test_invalid(self):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError):
            HashPartitioner(0)


class TestMetrics:
    def test_shuffle_volume_counted(self):
        ctx = Context(default_parallelism=4)
        pairs = [(i % 3, i) for i in range(30)]
        ctx.parallelize(pairs).group_by_key().collect()
        assert ctx.metrics.shuffles == 1
        assert ctx.metrics.records_shuffled == 30

    def test_map_side_combine_reduces_volume(self):
        # reduce_by_key combines before the shuffle; group_by_key does
        # not.  With few keys, far fewer records cross the boundary.
        pairs = [(i % 3, 1) for i in range(300)]
        ctx_reduce = Context(default_parallelism=4)
        ctx_reduce.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect()
        ctx_group = Context(default_parallelism=4)
        ctx_group.parallelize(pairs).group_by_key().collect()
        assert (
            ctx_reduce.metrics.records_shuffled
            < ctx_group.metrics.records_shuffled
        )
        assert ctx_reduce.metrics.records_shuffled <= 3 * 4

    def test_tasks_counted(self):
        ctx = Context(default_parallelism=4)
        ctx.parallelize(range(8)).map(lambda x: x).collect()
        assert ctx.metrics.tasks_executed > 0

    def test_snapshot_and_reset(self):
        ctx = Context(default_parallelism=2)
        ctx.parallelize([1]).collect()
        snap = ctx.metrics.snapshot()
        assert snap["collects"] == 1
        ctx.metrics.reset()
        assert ctx.metrics.snapshot()["collects"] == 0

    def test_cache_hits_do_not_count_tasks(self):
        ctx = Context(default_parallelism=2)
        rdd = ctx.parallelize(range(10)).map(lambda x: x).cache()
        rdd.collect()
        first = ctx.metrics.tasks_executed
        rdd.collect()
        # Only the leaf recompute may add tasks; cached map layer not.
        assert ctx.metrics.tasks_executed == first
