"""Failure-injection tests: SparkLite's lineage-based task retry."""

import numpy as np
import pytest

from repro.exceptions import ParameterError, SparkLiteError, TaskFailure
from repro.sparklite import Context
from repro.sparklite.failures import FailFirstAttempts, RandomFailures


class TestRetrySemantics:
    def test_every_task_fails_once_and_recovers(self):
        injector = FailFirstAttempts(1)
        ctx = Context(default_parallelism=4, failure_injector=injector)
        result = ctx.parallelize(range(100)).map(lambda x: x * 2).collect()
        assert result == [x * 2 for x in range(100)]
        assert injector.injected > 0
        assert ctx.metrics.task_retries == injector.injected

    def test_shuffle_pipeline_survives_failures(self):
        injector = FailFirstAttempts(1)
        ctx = Context(default_parallelism=3, failure_injector=injector)
        pairs = [(i % 5, 1) for i in range(200)]
        counts = dict(
            ctx.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect()
        )
        assert counts == {k: 40 for k in range(5)}

    def test_join_survives_failures(self):
        injector = FailFirstAttempts(1)
        ctx = Context(default_parallelism=3, failure_injector=injector)
        left = ctx.parallelize([("a", 1), ("b", 2)])
        right = ctx.parallelize([("a", "x")])
        assert dict(left.join(right).collect()) == {"a": (1, "x")}

    def test_exhausted_retries_raise(self):
        injector = FailFirstAttempts(10)  # more than the retry budget
        ctx = Context(
            default_parallelism=2,
            failure_injector=injector,
            max_task_retries=2,
        )
        with pytest.raises(TaskFailure):
            ctx.parallelize([1, 2, 3]).collect()

    def test_zero_retries_budget(self):
        ctx = Context(
            default_parallelism=2,
            failure_injector=FailFirstAttempts(1),
            max_task_retries=0,
        )
        with pytest.raises(TaskFailure):
            ctx.parallelize([1]).collect()

    def test_user_errors_are_not_retried(self):
        ctx = Context(default_parallelism=1)
        calls = []

        def boom(x):
            calls.append(x)
            raise ValueError("deterministic bug")

        with pytest.raises(ValueError):
            ctx.parallelize([1]).map(boom).collect()
        assert len(calls) == 1  # no retry for non-TaskFailure errors

    def test_random_failures_recovered(self):
        injector = RandomFailures(rate=0.3, seed=42)
        ctx = Context(
            default_parallelism=4,
            failure_injector=injector,
            max_task_retries=50,
        )
        data = list(range(500))
        result = (
            ctx.parallelize(data)
            .map(lambda x: (x % 7, x))
            .group_by_key()
            .map_values(sorted)
            .collect()
        )
        grouped = dict(result)
        assert sorted(grouped) == list(range(7))
        assert all(
            grouped[k] == [x for x in data if x % 7 == k] for k in grouped
        )
        assert injector.injected > 0

    def test_threaded_executors_with_failures(self):
        injector = FailFirstAttempts(1)
        ctx = Context(
            default_parallelism=6,
            max_workers=3,
            failure_injector=injector,
        )
        assert ctx.parallelize(range(60)).count() == 60

    def test_invalid_retry_budget(self):
        with pytest.raises(SparkLiteError):
            Context(max_task_retries=-1)


class TestDistributedEngineUnderFailures:
    def test_dbscout_exact_despite_injected_failures(self, clustered_2d):
        from repro.core.distributed import DistributedEngine
        from repro.core.vectorized import detect as batch_detect

        injector = FailFirstAttempts(1)
        ctx = Context(
            default_parallelism=4,
            failure_injector=injector,
            max_task_retries=3,
        )
        engine = DistributedEngine(num_partitions=4, context=ctx)
        result = engine.detect(clustered_2d, 0.8, 8)
        expected = batch_detect(clustered_2d, 0.8, 8)
        assert np.array_equal(result.outlier_mask, expected.outlier_mask)
        assert np.array_equal(result.core_mask, expected.core_mask)
        assert ctx.metrics.task_retries > 0


class TestInjectors:
    def test_fail_first_attempts_validation(self):
        with pytest.raises(ParameterError):
            FailFirstAttempts(-1)

    def test_fail_first_zero_is_noop(self):
        ctx = Context(
            default_parallelism=2, failure_injector=FailFirstAttempts(0)
        )
        assert ctx.parallelize([1, 2]).collect() == [1, 2]
        assert ctx.metrics.task_retries == 0

    def test_random_rate_validation(self):
        with pytest.raises(ParameterError):
            RandomFailures(rate=1.0)
        with pytest.raises(ParameterError):
            RandomFailures(rate=-0.1)

    def test_random_is_deterministic_given_seed(self):
        def run(seed):
            injector = RandomFailures(rate=0.5, seed=seed)
            ctx = Context(
                default_parallelism=3,
                failure_injector=injector,
                max_task_retries=100,
            )
            ctx.parallelize(range(30)).collect()
            return injector.injected

        assert run(7) == run(7)
