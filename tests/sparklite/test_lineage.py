"""Tests for RDD lineage inspection (to_debug_string)."""

import pytest

from repro.sparklite import Context


@pytest.fixture
def ctx() -> Context:
    return Context(default_parallelism=3)


class TestDebugString:
    def test_leaf(self, ctx):
        text = ctx.parallelize([1, 2, 3]).to_debug_string()
        assert text == "+- ParallelizedRDD(3 partitions)"

    def test_narrow_chain_depth(self, ctx):
        rdd = ctx.parallelize([1]).map(lambda x: x).filter(bool)
        lines = rdd.to_debug_string().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("+-")
        assert lines[-1].lstrip().startswith("+- ParallelizedRDD")

    def test_shuffle_boundary_shows_partitioner(self, ctx):
        rdd = ctx.parallelize([("a", 1)]).reduce_by_key(lambda a, b: a + b)
        text = rdd.to_debug_string()
        assert "ShuffledRDD" in text
        assert "HashPartitioner" in text

    def test_union_shows_both_branches(self, ctx):
        left = ctx.parallelize([1])
        right = ctx.parallelize([2]).map(lambda x: x)
        text = left.union(right).to_debug_string()
        assert text.count("ParallelizedRDD") == 2
        assert "UnionRDD" in text

    def test_cached_flag(self, ctx):
        rdd = ctx.parallelize([1]).map(lambda x: x).cache()
        assert "[cached]" in rdd.to_debug_string().splitlines()[0]

    def test_join_lineage_includes_cogroup_shuffle(self, ctx):
        left = ctx.parallelize([("a", 1)])
        right = ctx.parallelize([("a", 2)])
        text = left.join(right).to_debug_string()
        assert "ShuffledRDD" in text
        assert text.count("ParallelizedRDD") == 2
