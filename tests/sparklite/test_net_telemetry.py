"""Distributed telemetry over the net executor (loopback cluster).

Covers the PR-8 tentpole contracts: trace-context propagation (remote
spans graft under the exact driver span that dispatched them, tagged
with ``host``/``worker_id``), counter harvesting (per-worker plus
pre-aggregated ``worker.*`` totals; engine counters bit-identical to
the local executor), the zero-added-frame-bytes invariant when
telemetry is off, the driver's ``telemetry`` control message, and the
EWMA straggler detector.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.core.distributed import DistributedEngine
from repro.net import HAVE_CLOUDPICKLE
from repro.obs.top import fetch_telemetry
from repro.sparklite import Context
from repro.sparklite.metrics import EngineMetrics
from repro.sparklite.netexec import (
    STRAGGLER_MIN_TASKS,
    LoopbackCluster,
    _WorkerConn,
)

pytestmark = pytest.mark.skipif(
    not HAVE_CLOUDPICKLE, reason="net executor needs cloudpickle"
)


@pytest.fixture
def tracing():
    obs.enable_tracing()
    try:
        yield
    finally:
        obs.disable_tracing()


def _points(seed: int = 0, n: int = 220):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [
            rng.normal(0.0, 0.4, size=(n - 20, 2)),
            rng.uniform(-8.0, 8.0, size=(20, 2)),
        ]
    )


# ----------------------------------------------------------------------
# Trace-context propagation and span grafting
# ----------------------------------------------------------------------


class TestSpanGraft:
    def test_remote_spans_graft_under_dispatching_span(self, tracing):
        tracer = obs.Tracer()
        with tracer.activate(), tracer.span("driver.root"):
            with LoopbackCluster(n_workers=2) as cluster:
                rdd = cluster.context.parallelize(range(100), 4)
                assert sorted(rdd.map(lambda x: x + 1).collect()) == list(
                    range(1, 101)
                )
        spans = tracer.spans()
        tasks = [s for s in spans if s.name == "worker.task"]
        assert len(tasks) == 4  # one per partition
        # Dispatch happened inside the sparklite.collect span opened on
        # the calling thread — that is the graft parent, which itself
        # hangs under driver.root.
        collect = next(s for s in spans if s.name == "sparklite.collect")
        root = next(s for s in spans if s.name == "driver.root")
        assert collect.parent_id == root.span_id
        assert {s.parent_id for s in tasks} == {collect.span_id}
        for task in tasks:
            assert task.attrs["worker_id"].startswith("loopback-")
            assert task.attrs["host"]
            assert task.depth == collect.depth + 1
            # Remote start offsets are rebased onto the driver timeline:
            # never before the span that dispatched them.
            assert task.start_s >= collect.start_s
        # The worker-side phase spans came along and kept their nesting.
        for name in ("worker.decode", "worker.execute", "worker.encode"):
            children = [s for s in spans if s.name == name]
            assert len(children) == 4
            assert {s.parent_id for s in children} <= {
                t.span_id for t in tasks
            }

    def test_span_ids_unique_after_graft(self, tracing):
        tracer = obs.Tracer()
        with tracer.activate(), tracer.span("driver.root"):
            with LoopbackCluster(n_workers=2) as cluster:
                rdd = cluster.context.parallelize(range(60), 6)
                rdd.map(lambda x: x).collect()
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == len(set(ids))


# ----------------------------------------------------------------------
# Counter harvesting
# ----------------------------------------------------------------------


class TestCounterHarvest:
    def test_per_worker_and_total_counters(self, tracing):
        tracer = obs.Tracer()
        with tracer.activate(), tracer.span("driver.root"):
            with LoopbackCluster(n_workers=2) as cluster:
                rdd = cluster.context.parallelize(range(100), 4)
                rdd.map(lambda x: x * 2).collect()
                snapshot = cluster.context.metrics.snapshot()
        assert snapshot["worker.tasks"] == 4
        assert snapshot["worker.records_in"] == 100
        assert snapshot["worker.records_out"] == 100
        per_worker = {
            name: value
            for name, value in snapshot.items()
            if name.startswith("worker.loopback-")
        }
        assert per_worker, "expected worker.<id>.* counters"
        # Per-worker shards sum to the pre-aggregated totals.
        for metric in ("tasks", "records_in", "records_out", "bytes_in"):
            shards = [
                value
                for name, value in per_worker.items()
                if name.endswith(f".{metric}")
            ]
            assert sum(shards) == pytest.approx(
                snapshot[f"worker.{metric}"]
            )
        assert obs.names.undeclared(EngineMetrics.qualify(snapshot)) == []

    def test_engine_counters_identical_to_local(self, tracing):
        points = _points(seed=2)
        sink_local = obs.InMemorySink()
        with obs.recording(sink_local):
            DistributedEngine(num_partitions=4).detect(points, 0.4, 8)
        sink_net = obs.InMemorySink()
        with LoopbackCluster(n_workers=2) as cluster:
            engine = DistributedEngine(
                num_partitions=4, context=cluster.context
            )
            with obs.recording(sink_net):
                engine.detect(points, 0.4, 8)
        (local_rec,) = sink_local.records
        (net_rec,) = sink_net.records
        # The work the engine does is bit-identical either way: same
        # shuffle volumes, same job structure, same engine counters.
        # (tasks_executed is excluded: the net executor flattens a
        # lineage chain of maps into one dispatched task, so its count
        # is executor-shaped, not work-shaped.)
        for name in (
            "sparklite.shuffles",
            "sparklite.records_shuffled",
            "sparklite.broadcasts",
            "sparklite.collects",
        ):
            assert net_rec.counters[name] == local_rec.counters[name], name
        local_engine = {
            k: v
            for k, v in local_rec.counters.items()
            if k.startswith("engine.")
        }
        net_engine = {
            k: v
            for k, v in net_rec.counters.items()
            if k.startswith("engine.")
        }
        assert net_engine == local_engine
        # And the default diff treats them as equal runs (worker.* and
        # wall-clock counters are excluded by construction); only the
        # net transport counters and the executor-shaped task count may
        # legitimately differ.
        diff = obs.diff_records(local_rec, net_rec)
        unequal = [
            entry.name
            for entry in diff.counters
            if entry.baseline != entry.candidate
        ]
        assert all(
            name.startswith("sparklite.net.")
            or name == "sparklite.tasks_executed"
            for name in unequal
        ), unequal


# ----------------------------------------------------------------------
# Telemetry-off invariant
# ----------------------------------------------------------------------


class TestZeroOverheadWhenOff:
    def test_no_trace_no_harvest_and_byte_parity(self):
        def run():
            with LoopbackCluster(n_workers=2) as cluster:
                rdd = cluster.context.parallelize(range(200), 4)
                assert sum(rdd.map(lambda x: x + 1).collect()) == 20100
                return cluster.context.metrics.snapshot()

        first = run()
        second = run()
        # No telemetry fields at all...
        assert not any(k.startswith("worker.") for k in first)
        # ...and the exact same bytes on the wire every time: tracing
        # off adds zero frame bytes (the PR-2 metering invariant).
        assert first["net.bytes_out"] == second["net.bytes_out"]
        assert first["net.bytes_in"] == second["net.bytes_in"]

    def test_tracing_adds_bytes_only_when_on(self, tracing):
        def run(traced: bool):
            tracer = obs.Tracer() if traced else None
            with LoopbackCluster(n_workers=1) as cluster:
                rdd = cluster.context.parallelize(range(50), 2)
                if traced:
                    with tracer.activate(), tracer.span("root"):
                        rdd.map(lambda x: x).collect()
                else:
                    rdd.map(lambda x: x).collect()
                return cluster.context.metrics.snapshot()

        on = run(True)
        obs.disable_tracing()
        off = run(False)
        # The trace field and the returned telemetry are real bytes —
        # present when tracing, absent otherwise.
        assert on["net.bytes_out"] > off["net.bytes_out"]
        assert on["net.bytes_in"] > off["net.bytes_in"]


# ----------------------------------------------------------------------
# Driver telemetry exposition
# ----------------------------------------------------------------------


class TestDriverTelemetry:
    def test_telemetry_message_and_snapshot(self):
        with LoopbackCluster(n_workers=2) as cluster:
            rdd = cluster.context.parallelize(range(80), 4)
            rdd.map(lambda x: x).collect()
            driver = cluster.context.net
            snapshot = driver.telemetry_snapshot()
            assert snapshot["kind"] == "netdriver"
            assert snapshot["n_workers"] == 2
            assert snapshot["counters"]["sparklite.net.tasks"] == 4
            assert len(snapshot["workers"]) == 2
            for row in snapshot["workers"]:
                assert row["alive"]
                assert row["tasks"] >= 1
                assert row["bytes_out"] > 0
                assert row["bytes_in"] > 0
            # The same snapshot over the wire, via the control message
            # every monitor (repro top) uses.
            bytes_before = cluster.context.metrics.net_bytes_in
            remote = fetch_telemetry("127.0.0.1", driver.port)
            assert remote["kind"] == "netdriver"
            assert [w["name"] for w in remote["workers"]] == [
                w["name"] for w in snapshot["workers"]
            ]
            # Monitor traffic is not metered as work.
            assert cluster.context.metrics.net_bytes_in == bytes_before

    def test_metrics_port_serves_http(self):
        import urllib.request

        with LoopbackCluster(n_workers=1, metrics_port=0) as cluster:
            rdd = cluster.context.parallelize(range(30), 2)
            rdd.map(lambda x: x).collect()
            port = cluster.context.net.metrics_http.port
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics"
            ).read().decode()
        assert "# TYPE repro_sparklite_net_tasks counter" in body
        assert 'repro_net_worker_alive{worker="loopback-0"} 1' in body


# ----------------------------------------------------------------------
# Straggler detection
# ----------------------------------------------------------------------


class TestStragglerDetection:
    def test_ewma_flags_and_recovers(self):
        with Context(executor="net", straggler_threshold=3.0) as context:
            driver = context.net
            fast = _WorkerConn("fast", writer=None)
            slow = _WorkerConn("slow", writer=None)
            driver._workers = {0: fast, 1: slow}
            for _ in range(STRAGGLER_MIN_TASKS):
                driver._note_task_time(fast, 0.01)
                driver._note_task_time(slow, 0.01)
            assert not slow.straggler
            # A run of slow tasks drags the EWMA past 3x the median.
            for _ in range(6):
                driver._note_task_time(slow, 0.5)
            assert slow.straggler
            assert not fast.straggler
            assert context.metrics.net_stragglers == 1
            # Suspected stragglers are deprioritized by the scheduler
            # sort key even when equally loaded.
            assert (slow.straggler, len(slow.futures)) > (
                fast.straggler,
                len(fast.futures),
            )
            # Recovery: fast tasks pull the EWMA back under the cutoff.
            for _ in range(40):
                driver._note_task_time(slow, 0.01)
            assert not slow.straggler
            # Re-flagging counts again.
            for _ in range(6):
                driver._note_task_time(slow, 0.5)
            assert slow.straggler
            assert context.metrics.net_stragglers == 2
            driver._workers = {}

    def test_single_worker_never_flagged(self):
        with Context(executor="net") as context:
            driver = context.net
            only = _WorkerConn("only", writer=None)
            driver._workers = {0: only}
            for _ in range(10):
                driver._note_task_time(only, 0.5)
            assert not only.straggler
            assert context.metrics.net_stragglers == 0
            driver._workers = {}

    def test_straggler_span_event_when_tracing(self, tracing):
        tracer = obs.Tracer()
        with Context(executor="net") as context:
            driver = context.net
            fast = _WorkerConn("fast", writer=None)
            slow = _WorkerConn("slow", writer=None)
            driver._workers = {0: fast, 1: slow}
            with tracer.activate():
                for _ in range(STRAGGLER_MIN_TASKS):
                    driver._note_task_time(fast, 0.01)
                    driver._note_task_time(slow, 0.01)
                for _ in range(6):
                    driver._note_task_time(slow, 0.5)
            driver._workers = {}
        events = [
            s
            for s in tracer.spans()
            if s.name == "net.straggler_suspected"
        ]
        assert len(events) == 1
        assert events[0].attrs["worker_id"] == "slow"
        assert events[0].attrs["ewma_ms"] > events[0].attrs["median_ms"]
