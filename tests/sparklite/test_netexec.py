"""Loopback multi-worker integration tests for the net executor.

Every test here spins real worker subprocesses on 127.0.0.1 and checks
the tentpole contracts: bit-identical results vs the local executor,
wire metrics, broadcast accounting, lineage re-execution after a
worker is killed mid-job, and the driver-side timeout on a hung
worker.
"""

from __future__ import annotations

import asyncio
import os
import socket
import struct

import numpy as np
import pytest

from repro.core.dbscout import DBSCOUT
from repro.core.distributed import DistributedEngine
from repro.exceptions import BroadcastError, SparkLiteError
from repro.net import HAVE_CLOUDPICKLE, encode_line
from repro.sparklite import Broadcast, Context
from repro.sparklite.netexec import LoopbackCluster

pytestmark = pytest.mark.skipif(
    not HAVE_CLOUDPICKLE, reason="net executor needs cloudpickle"
)


@pytest.fixture(scope="module")
def cluster():
    with LoopbackCluster(n_workers=2, default_parallelism=4) as made:
        yield made


def _points(seed: int = 0, n: int = 260):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [rng.normal(0.0, 0.3, (n, 2)), rng.uniform(-4.0, 4.0, (20, 2))]
    )


# ----------------------------------------------------------------------
# RDD-level parity
# ----------------------------------------------------------------------


class TestRddParity:
    def test_map_filter_collect(self, cluster):
        rdd = (
            cluster.context.parallelize(range(200), 4)
            .map(lambda x: x * 3)
            .filter(lambda x: x % 2 == 0)
        )
        local = [x * 3 for x in range(200) if (x * 3) % 2 == 0]
        assert sorted(rdd.collect()) == sorted(local)

    def test_reduce_by_key_matches_local(self, cluster):
        data = [(i % 7, i) for i in range(300)]
        remote = (
            cluster.context.parallelize(data, 4)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        local = (
            Context(default_parallelism=4)
            .parallelize(data, 4)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert remote == local

    def test_broadcast_reaches_workers(self, cluster):
        table = {"offset": 100}
        handle = cluster.context.broadcast(table)
        out = (
            cluster.context.parallelize(range(10), 2)
            .map(lambda x: x + handle.value["offset"])
            .collect()
        )
        assert sorted(out) == [100 + x for x in range(10)]

    def test_numpy_payloads_roundtrip(self, cluster):
        arrays = [np.arange(5, dtype=np.float64) * i for i in range(8)]
        out = (
            cluster.context.parallelize(arrays, 4)
            .map(lambda a: float(a.sum()))
            .collect()
        )
        assert sorted(out) == sorted(float(a.sum()) for a in arrays)

    def test_cached_rdd_computed_once_then_reused(self, cluster):
        base = cluster.context.parallelize(range(40), 4).map(
            lambda x: x + 1
        )
        cached = base.cache()
        first = sorted(cached.collect())
        tasks_after_first = cluster.context.metrics.tasks_executed
        second = sorted(cached.collect())
        assert first == second == [x + 1 for x in range(40)]
        assert cluster.context.metrics.tasks_executed == tasks_after_first


# ----------------------------------------------------------------------
# Engine-level bit-identity
# ----------------------------------------------------------------------


class TestEngineParity:
    def test_labels_bit_identical_to_local(self, cluster):
        points = _points()
        local = DBSCOUT(
            eps=0.4, min_pts=8, engine="distributed", num_partitions=4
        ).fit(points)
        engine = DistributedEngine(
            num_partitions=4, context=cluster.context
        )
        remote = engine.detect(points, 0.4, 8)
        np.testing.assert_array_equal(
            remote.outlier_mask, local.outlier_mask
        )
        np.testing.assert_array_equal(remote.core_mask, local.core_mask)

    def test_cells_partitioner_same_labels_over_the_wire(self, cluster):
        points = _points(seed=3)
        local = DBSCOUT(
            eps=0.4, min_pts=8, engine="distributed", num_partitions=4
        ).fit(points)
        engine = DistributedEngine(
            num_partitions=4, context=cluster.context, partitioner="cells"
        )
        remote = engine.detect(points, 0.4, 8)
        np.testing.assert_array_equal(
            remote.outlier_mask, local.outlier_mask
        )

    def test_net_counters_surface_in_run_stats(self, cluster):
        engine = DistributedEngine(
            num_partitions=4, context=cluster.context
        )
        result = engine.detect(_points(seed=5), 0.4, 8)
        assert result.stats["net.tasks"] > 0
        assert result.stats["net.bytes_out"] > 0
        assert result.stats["net.bytes_in"] > 0
        assert result.stats["executor"] == "net"
        # The record keeps them fully qualified.
        assert result.record.counters["sparklite.net.bytes_out"] > 0

    def test_local_snapshot_has_no_net_keys(self):
        context = Context(default_parallelism=2)
        context.parallelize(range(10), 2).collect()
        assert not any(
            key.startswith("net.") for key in context.metrics.snapshot()
        )


# ----------------------------------------------------------------------
# Broadcast accounting
# ----------------------------------------------------------------------


class TestBroadcastAccounting:
    def test_charged_once_per_registered_worker(self, cluster):
        metrics = cluster.context.metrics
        before = metrics.net_broadcast_bytes_out
        handle = cluster.context.broadcast(list(range(1000)))
        shipped = metrics.net_broadcast_bytes_out - before
        assert shipped > 0
        assert shipped % 2 == 0  # exactly one frame per worker, 2 workers
        per_worker = shipped // 2
        # Frame-length accounting, not a sampled estimate: both workers
        # got the same exact frame.
        assert per_worker * 2 == shipped
        assert handle.value == list(range(1000))

    def test_pickled_handle_carries_only_the_id(self):
        import pickle

        handle = Broadcast(7, list(range(10_000)))
        blob = pickle.dumps(handle)
        assert len(blob) < 200
        revived = pickle.loads(blob)
        assert revived.id == 7
        with pytest.raises(BroadcastError):
            _ = revived.value  # no broadcast store in this process


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------


class TestFailureRecovery:
    def test_killed_worker_triggers_lineage_rerun(self):
        # Closures (not module-level functions) so cloudpickle ships
        # them by value — the worker can't import this test module.
        def kill_if_first_worker(index, iterator):
            if os.environ.get("REPRO_WORKER_INDEX") == "0":
                os._exit(1)
            return list(iterator)

        with LoopbackCluster(n_workers=2, default_parallelism=4) as made:
            context = made.context
            out = (
                context.parallelize(range(40), 4)
                .map_partitions_with_index(kill_if_first_worker)
                .collect()
            )
            assert sorted(out) == list(range(40))
            assert context.metrics.net_worker_failures >= 1
            assert context.metrics.net_lineage_reruns >= 1

    def test_hung_worker_times_out_and_reruns(self):
        with LoopbackCluster(
            n_workers=2, default_parallelism=2, task_timeout=2.0
        ) as made:
            context = made.context

            def hang_on_first_worker(index, iterator):
                if os.environ.get("REPRO_WORKER_INDEX") == "0":
                    import time as _time

                    _time.sleep(3600)
                return list(iterator)

            out = (
                context.parallelize(range(20), 2)
                .map_partitions_with_index(hang_on_first_worker)
                .collect()
            )
            assert sorted(out) == list(range(20))
            assert context.metrics.net_worker_failures >= 1

    def test_all_workers_lost_raises_sparklite_error(self):
        with LoopbackCluster(n_workers=1, default_parallelism=2) as made:
            made.processes[0].terminate()
            made.processes[0].wait(timeout=5.0)
            with pytest.raises(SparkLiteError):
                made.context.parallelize(range(10), 2).map(
                    lambda x: x
                ).collect()


class TestRegistrationEdge:
    def test_register_only_socket_does_not_get_tasks(self):
        """A fake worker that registers but never answers is timed out
        and its work re-runs on the real worker."""
        with LoopbackCluster(
            n_workers=1, default_parallelism=2, task_timeout=2.0
        ) as made:
            port = made.context.net.port
            fake = socket.create_connection(("127.0.0.1", port))
            fake.sendall(encode_line({"op": "register", "name": "mute"}))
            made.context.net.wait_for_workers(2, timeout=10.0)
            try:
                out = (
                    made.context.parallelize(range(20), 2)
                    .map(lambda x: x + 1)
                    .collect()
                )
                assert sorted(out) == [x + 1 for x in range(20)]
            finally:
                fake.close()

    def test_wait_for_workers_times_out_cleanly(self):
        context = Context(executor="net", port=0)
        try:
            with pytest.raises(SparkLiteError):
                context.net.wait_for_workers(1, timeout=0.2)
        finally:
            context.close()


# ----------------------------------------------------------------------
# Wire framing guards
# ----------------------------------------------------------------------


class TestFraming:
    def test_oversized_frame_length_rejected(self):
        """A corrupted length prefix must not trigger a huge alloc."""
        from repro.exceptions import ServeError
        from repro.net import MAX_FRAME_BYTES, read_message

        reader = asyncio.StreamReader()
        reader.feed_data(encode_line({"ok": True, "frames": 1}))
        reader.feed_data(struct.pack(">Q", MAX_FRAME_BYTES + 1))
        reader.feed_eof()
        with pytest.raises(ServeError):
            asyncio.run(read_message(reader))

    def test_cli_workers_rejects_bad_connect(self):
        from repro.cli import main

        assert main(["workers", "--connect", "nonsense"]) == 2
