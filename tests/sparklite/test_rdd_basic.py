"""Tests for SparkLite narrow transformations and actions."""

import pytest

from repro.exceptions import SparkLiteError
from repro.sparklite import Context


@pytest.fixture
def ctx() -> Context:
    return Context(default_parallelism=4)


class TestParallelize:
    def test_roundtrip(self, ctx):
        data = list(range(10))
        assert ctx.parallelize(data).collect() == data

    def test_partition_count(self, ctx):
        rdd = ctx.parallelize(range(10), num_partitions=3)
        assert rdd.num_partitions == 3
        sizes = rdd.num_records_per_partition()
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_more_partitions_than_records(self, ctx):
        rdd = ctx.parallelize([1, 2], num_partitions=5)
        assert rdd.collect() == [1, 2]
        assert rdd.num_partitions == 5

    def test_empty(self, ctx):
        assert ctx.parallelize([]).collect() == []

    def test_empty_rdd(self, ctx):
        assert ctx.empty_rdd().collect() == []

    def test_invalid_partitions(self, ctx):
        with pytest.raises(SparkLiteError):
            ctx.parallelize([1], num_partitions=0)

    def test_order_preserved(self, ctx):
        data = list(range(100))
        assert ctx.parallelize(data, 7).collect() == data


class TestNarrowTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3]).map(lambda x: x * 2).collect() == [
            2,
            4,
            6,
        ]

    def test_filter(self, ctx):
        result = ctx.parallelize(range(10)).filter(lambda x: x % 2 == 0)
        assert result.collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        result = ctx.parallelize([1, 2, 3]).flat_map(lambda x: [x] * x)
        assert result.collect() == [1, 2, 2, 3, 3, 3]

    def test_flat_map_empty_outputs(self, ctx):
        result = ctx.parallelize([1, 2, 3]).flat_map(lambda x: [])
        assert result.collect() == []

    def test_map_partitions(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map_partitions(
            lambda it: [sum(it)]
        )
        assert sum(rdd.collect()) == 45
        assert len(rdd.collect()) == 2

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.parallelize(range(4), 2).map_partitions_with_index(
            lambda i, it: [(i, x) for x in it]
        )
        assert rdd.collect() == [(0, 0), (0, 1), (1, 2), (1, 3)]

    def test_chaining(self, ctx):
        result = (
            ctx.parallelize(range(20))
            .map(lambda x: x + 1)
            .filter(lambda x: x % 3 == 0)
            .map(lambda x: x * 10)
        )
        assert result.collect() == [30, 60, 90, 120, 150, 180]

    def test_union(self, ctx):
        left = ctx.parallelize([1, 2], 2)
        right = ctx.parallelize([3, 4], 2)
        merged = left.union(right)
        assert merged.collect() == [1, 2, 3, 4]
        assert merged.num_partitions == 4

    def test_union_rejects_other_context(self, ctx):
        other = Context()
        with pytest.raises(SparkLiteError):
            ctx.parallelize([1]).union(other.parallelize([2]))

    def test_distinct(self, ctx):
        result = ctx.parallelize([3, 1, 2, 3, 1, 1]).distinct().collect()
        assert sorted(result) == [1, 2, 3]

    def test_sample_fraction_bounds(self, ctx):
        with pytest.raises(SparkLiteError):
            ctx.parallelize([1]).sample(1.5)

    def test_sample_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        a = rdd.sample(0.3, seed=7).collect()
        b = rdd.sample(0.3, seed=7).collect()
        assert a == b
        assert 200 < len(a) < 400

    def test_glom(self, ctx):
        parts = ctx.parallelize(range(6), 3).glom().collect()
        assert parts == [[0, 1], [2, 3], [4, 5]]


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(42), 5).count() == 42

    def test_take(self, ctx):
        assert ctx.parallelize(range(100), 10).take(5) == [0, 1, 2, 3, 4]

    def test_take_more_than_available(self, ctx):
        assert ctx.parallelize([1, 2]).take(10) == [1, 2]

    def test_first(self, ctx):
        assert ctx.parallelize([9, 8, 7]).first() == 9

    def test_first_empty_raises(self, ctx):
        with pytest.raises(SparkLiteError):
            ctx.parallelize([]).first()

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(10), 3).reduce(lambda a, b: a + b) == 45

    def test_reduce_with_empty_partitions(self, ctx):
        assert ctx.parallelize([5], 4).reduce(lambda a, b: a + b) == 5

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(SparkLiteError):
            ctx.parallelize([]).reduce(lambda a, b: a + b)

    def test_for_each(self, ctx):
        seen = []
        ctx.parallelize(range(5)).for_each(seen.append)
        assert seen == [0, 1, 2, 3, 4]


class TestCaching:
    def test_cache_avoids_recompute(self, ctx):
        calls = []

        def trace(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(5), 1).map(trace).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 5  # second collect served from cache

    def test_without_cache_recomputes(self, ctx):
        calls = []

        def trace(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(5), 1).map(trace)
        rdd.collect()
        rdd.collect()
        assert len(calls) == 10

    def test_unpersist(self, ctx):
        calls = []

        def trace(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(5), 1).map(trace).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 10
