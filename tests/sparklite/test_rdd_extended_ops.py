"""Tests for the extended SparkLite operations."""

import random
from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparklite import Context


@pytest.fixture
def ctx() -> Context:
    return Context(default_parallelism=4)


class TestOuterJoins:
    def test_full_outer_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2)])
        right = ctx.parallelize([("b", "x"), ("c", "y")])
        joined = dict(left.full_outer_join(right).collect())
        assert joined == {
            "a": (1, None),
            "b": (2, "x"),
            "c": (None, "y"),
        }

    def test_full_outer_join_cross_product(self, ctx):
        left = ctx.parallelize([("k", 1), ("k", 2)])
        right = ctx.parallelize([("k", "x")])
        values = sorted(v for _k, v in left.full_outer_join(right).collect())
        assert values == [(1, "x"), (2, "x")]

    def test_subtract_by_key(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2), ("c", 3), ("a", 4)])
        right = ctx.parallelize([("a", None), ("c", None)])
        remaining = left.subtract_by_key(right).collect()
        assert remaining == [("b", 2)]

    def test_subtract_by_key_empty_right(self, ctx):
        left = ctx.parallelize([("a", 1)])
        right = ctx.empty_rdd()
        assert left.subtract_by_key(right).collect() == [("a", 1)]


class TestAggregations:
    def test_aggregate_by_key_mean(self, ctx):
        pairs = [("a", 1.0), ("a", 3.0), ("b", 10.0)]
        sums_counts = dict(
            ctx.parallelize(pairs, 3)
            .aggregate_by_key(
                (0.0, 0),
                lambda acc, v: (acc[0] + v, acc[1] + 1),
                lambda a, b: (a[0] + b[0], a[1] + b[1]),
            )
            .collect()
        )
        assert sums_counts == {"a": (4.0, 2), "b": (10.0, 1)}

    def test_aggregate_zero_not_shared_between_keys(self, ctx):
        # A mutable zero must not leak state across keys.
        pairs = [("a", 1), ("b", 2)]
        lists = dict(
            ctx.parallelize(pairs, 1)
            .aggregate_by_key(
                [],
                lambda acc, v: acc + [v],
                lambda a, b: a + b,
            )
            .collect()
        )
        assert lists == {"a": [1], "b": [2]}

    def test_fold_by_key(self, ctx):
        pairs = [("x", 2), ("x", 3), ("y", 5)]
        products = dict(
            ctx.parallelize(pairs, 2)
            .fold_by_key(1, lambda a, b: a * b)
            .collect()
        )
        assert products == {"x": 6, "y": 5}


class TestSortBy:
    def test_ascending(self, ctx):
        rng = random.Random(0)
        data = [rng.randrange(1000) for _ in range(300)]
        result = ctx.parallelize(data, 5).sort_by(lambda x: x).collect()
        assert result == sorted(data)

    def test_descending(self, ctx):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        result = (
            ctx.parallelize(data, 3)
            .sort_by(lambda x: x, ascending=False)
            .collect()
        )
        assert result == sorted(data, reverse=True)

    def test_key_function(self, ctx):
        data = [("b", 2), ("a", 3), ("c", 1)]
        result = ctx.parallelize(data).sort_by(lambda kv: kv[1]).collect()
        assert result == [("c", 1), ("b", 2), ("a", 3)]

    def test_output_partitions(self, ctx):
        result = ctx.parallelize(range(100), 4).sort_by(
            lambda x: -x, num_partitions=6
        )
        assert result.num_partitions == 6
        assert result.collect() == list(range(99, -1, -1))

    def test_empty(self, ctx):
        assert ctx.parallelize([]).sort_by(lambda x: x).collect() == []

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(st.integers(-1000, 1000), max_size=120),
        n_parts=st.integers(min_value=1, max_value=6),
    )
    def test_sort_property(self, data, n_parts):
        ctx = Context(default_parallelism=n_parts)
        result = ctx.parallelize(data, n_parts).sort_by(lambda x: x).collect()
        assert result == sorted(data)


class TestZipWithIndex:
    def test_indices_are_global(self, ctx):
        data = ["a", "b", "c", "d", "e"]
        indexed = ctx.parallelize(data, 3).zip_with_index().collect()
        assert indexed == [(v, i) for i, v in enumerate(data)]

    def test_empty_partitions(self, ctx):
        indexed = ctx.parallelize([1], 4).zip_with_index().collect()
        assert indexed == [(1, 0)]

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(), max_size=80),
        n_parts=st.integers(min_value=1, max_value=5),
    )
    def test_index_property(self, data, n_parts):
        ctx = Context(default_parallelism=n_parts)
        indexed = ctx.parallelize(data, n_parts).zip_with_index().collect()
        assert [v for v, _i in indexed] == data
        assert [i for _v, i in indexed] == list(range(len(data)))
