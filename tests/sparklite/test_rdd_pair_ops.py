"""Tests for SparkLite pair-RDD (key/value) operations."""

import pytest

from repro.exceptions import ShuffleError
from repro.sparklite import Context


@pytest.fixture
def ctx() -> Context:
    return Context(default_parallelism=4)


class TestKeysValues:
    def test_keys_values(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2)])
        assert rdd.keys().collect() == ["a", "b"]
        assert rdd.values().collect() == [1, 2]

    def test_map_values(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2)]).map_values(lambda v: v * 10)
        assert rdd.collect() == [("a", 10), ("b", 20)]

    def test_flat_map_values(self, ctx):
        rdd = ctx.parallelize([("a", 2), ("b", 1)]).flat_map_values(
            lambda v: range(v)
        )
        assert rdd.collect() == [("a", 0), ("a", 1), ("b", 0)]

    def test_non_pair_record_raises(self, ctx):
        with pytest.raises(ShuffleError):
            ctx.parallelize([1, 2, 3]).keys().collect()


class TestReduceByKey:
    def test_word_count(self, ctx):
        words = ["spark", "grid", "spark", "cell", "grid", "spark"]
        counts = dict(
            ctx.parallelize(words, 3)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert counts == {"spark": 3, "grid": 2, "cell": 1}

    def test_matches_functools_reduce(self, ctx):
        import functools
        import random

        rng = random.Random(0)
        pairs = [(rng.randrange(10), rng.randrange(100)) for _ in range(500)]
        result = dict(
            ctx.parallelize(pairs, 7).reduce_by_key(lambda a, b: a + b).collect()
        )
        expected = {}
        for key in set(k for k, _ in pairs):
            values = [v for k, v in pairs if k == key]
            expected[key] = functools.reduce(lambda a, b: a + b, values)
        assert result == expected

    def test_single_value_keys_pass_through(self, ctx):
        result = dict(
            ctx.parallelize([("a", 1)]).reduce_by_key(lambda a, b: a / 0).collect()
        )
        assert result == {"a": 1}  # reducer never invoked for singletons

    def test_output_partitions(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2)], 2).reduce_by_key(
            lambda a, b: a + b, num_partitions=5
        )
        assert rdd.num_partitions == 5

    def test_unhashable_key_raises(self, ctx):
        with pytest.raises(ShuffleError):
            ctx.parallelize([([1], 2)]).reduce_by_key(lambda a, b: a).collect()


class TestGroupByKey:
    def test_groups_all_values(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("a", 4)]
        groups = dict(ctx.parallelize(pairs, 3).group_by_key().collect())
        assert sorted(groups["a"]) == [1, 3, 4]
        assert groups["b"] == [2]

    def test_key_appears_once(self, ctx):
        pairs = [("k", i) for i in range(50)]
        out = ctx.parallelize(pairs, 5).group_by_key().collect()
        assert len(out) == 1

    def test_group_then_map_values(self, ctx):
        pairs = [("a", 1), ("a", 2), ("b", 5)]
        sums = dict(
            ctx.parallelize(pairs).group_by_key().map_values(sum).collect()
        )
        assert sums == {"a": 3, "b": 5}


class TestJoin:
    def test_inner_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2), ("c", 3)])
        right = ctx.parallelize([("a", "x"), ("b", "y"), ("d", "z")])
        joined = dict(left.join(right).collect())
        assert joined == {"a": (1, "x"), "b": (2, "y")}

    def test_join_produces_cross_product_per_key(self, ctx):
        left = ctx.parallelize([("k", 1), ("k", 2)])
        right = ctx.parallelize([("k", "x"), ("k", "y")])
        pairs = sorted(v for _k, v in left.join(right).collect())
        assert pairs == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_join_matches_nested_loop_reference(self, ctx):
        import random

        rng = random.Random(1)
        left = [(rng.randrange(8), rng.randrange(100)) for _ in range(60)]
        right = [(rng.randrange(8), rng.randrange(100)) for _ in range(40)]
        joined = ctx.parallelize(left, 3).join(
            ctx.parallelize(right, 5)
        ).collect()
        expected = [
            (k, (lv, rv)) for k, lv in left for rk, rv in right if rk == k
        ]
        assert sorted(joined) == sorted(expected)

    def test_left_outer_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2)])
        right = ctx.parallelize([("a", "x")])
        joined = dict(left.left_outer_join(right).collect())
        assert joined == {"a": (1, "x"), "b": (2, None)}

    def test_cogroup(self, ctx):
        left = ctx.parallelize([("a", 1), ("a", 2), ("b", 3)])
        right = ctx.parallelize([("a", "x"), ("c", "y")])
        grouped = dict(left.cogroup(right).collect())
        assert sorted(grouped["a"][0]) == [1, 2]
        assert grouped["a"][1] == ["x"]
        assert grouped["b"] == ([3], [])
        assert grouped["c"] == ([], ["y"])


class TestPartitionBy:
    def test_co_located_keys(self, ctx):
        rdd = ctx.parallelize(
            [(i % 5, i) for i in range(50)], 3
        ).partition_by(4)
        for part in rdd.glom().collect():
            keys = {k for k, _ in part}
            # Each key lives in exactly one partition.
            for key in keys:
                assert hash(key) % 4 == rdd.partitioner.partition_for(key)

    def test_already_partitioned_is_noop(self, ctx):
        rdd = ctx.parallelize([("a", 1)], 2).partition_by(4)
        assert rdd.partition_by(4) is rdd

    def test_count_by_key(self, ctx):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        assert ctx.parallelize(pairs).count_by_key() == {"a": 2, "b": 1}

    def test_collect_as_map(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        mapping = ctx.parallelize(pairs).collect_as_map()
        assert mapping["b"] == 2
        assert mapping["a"] == 3  # later duplicate wins
