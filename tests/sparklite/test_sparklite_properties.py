"""Property-based tests for the SparkLite engine."""

import functools
from collections import Counter, defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparklite import Context

keys = st.integers(min_value=0, max_value=12)
values = st.integers(min_value=-1000, max_value=1000)
pair_lists = st.lists(st.tuples(keys, values), max_size=80)
partition_counts = st.integers(min_value=1, max_value=6)


@settings(max_examples=50, deadline=None)
@given(pairs=pair_lists, n_parts=partition_counts)
def test_reduce_by_key_equals_functools_reduce(pairs, n_parts):
    ctx = Context(default_parallelism=n_parts)
    result = dict(
        ctx.parallelize(pairs, n_parts)
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    grouped = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    expected = {
        key: functools.reduce(lambda a, b: a + b, vals)
        for key, vals in grouped.items()
    }
    assert result == expected


@settings(max_examples=50, deadline=None)
@given(pairs=pair_lists, n_parts=partition_counts)
def test_group_by_key_preserves_multisets(pairs, n_parts):
    ctx = Context(default_parallelism=n_parts)
    groups = dict(ctx.parallelize(pairs, n_parts).group_by_key().collect())
    grouped = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    assert set(groups) == set(grouped)
    for key in groups:
        assert Counter(groups[key]) == Counter(grouped[key])


@settings(max_examples=50, deadline=None)
@given(left=pair_lists, right=pair_lists, n_parts=partition_counts)
def test_join_equals_nested_loop(left, right, n_parts):
    ctx = Context(default_parallelism=n_parts)
    joined = ctx.parallelize(left, n_parts).join(
        ctx.parallelize(right, n_parts)
    )
    expected = [
        (k, (lv, rv)) for k, lv in left for rk, rv in right if rk == k
    ]
    assert Counter(joined.collect()) == Counter(expected)


@settings(max_examples=50, deadline=None)
@given(pairs=pair_lists, n_parts=partition_counts, n_out=partition_counts)
def test_partition_by_preserves_multiset(pairs, n_parts, n_out):
    ctx = Context(default_parallelism=n_parts)
    shuffled = ctx.parallelize(pairs, n_parts).partition_by(n_out)
    assert Counter(shuffled.collect()) == Counter(pairs)
    assert shuffled.num_partitions == n_out


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(values, max_size=100),
    n_parts=partition_counts,
)
def test_map_filter_semantics(data, n_parts):
    ctx = Context(default_parallelism=n_parts)
    result = (
        ctx.parallelize(data, n_parts)
        .map(lambda x: x * 3)
        .filter(lambda x: x % 2 == 0)
        .collect()
    )
    assert result == [x * 3 for x in data if (x * 3) % 2 == 0]


@settings(max_examples=50, deadline=None)
@given(data=st.lists(values, max_size=100), n_parts=partition_counts)
def test_count_matches_len(data, n_parts):
    ctx = Context(default_parallelism=n_parts)
    assert ctx.parallelize(data, n_parts).count() == len(data)


@settings(max_examples=30, deadline=None)
@given(data=st.lists(values, min_size=1, max_size=60), n_parts=partition_counts)
def test_reduce_matches_sum(data, n_parts):
    ctx = Context(default_parallelism=n_parts)
    assert ctx.parallelize(data, n_parts).reduce(lambda a, b: a + b) == sum(
        data
    )


@settings(max_examples=30, deadline=None)
@given(data=st.lists(values, max_size=60), n_parts=partition_counts)
def test_distinct_matches_set(data, n_parts):
    ctx = Context(default_parallelism=n_parts)
    assert sorted(ctx.parallelize(data, n_parts).distinct().collect()) == sorted(
        set(data)
    )


@settings(max_examples=30, deadline=None)
@given(left=pair_lists, right=pair_lists, n_parts=partition_counts)
def test_cogroup_covers_all_keys(left, right, n_parts):
    ctx = Context(default_parallelism=n_parts)
    grouped = dict(
        ctx.parallelize(left, n_parts)
        .cogroup(ctx.parallelize(right, n_parts))
        .collect()
    )
    assert set(grouped) == {k for k, _ in left} | {k for k, _ in right}
    for key, (left_vals, right_vals) in grouped.items():
        assert Counter(left_vals) == Counter(v for k, v in left if k == key)
        assert Counter(right_vals) == Counter(v for k, v in right if k == key)
