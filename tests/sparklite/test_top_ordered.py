"""Tests for RDD.top / RDD.take_ordered."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SparkLiteError
from repro.sparklite import Context


@pytest.fixture
def ctx() -> Context:
    return Context(default_parallelism=4)


class TestTop:
    def test_largest(self, ctx):
        assert ctx.parallelize([5, 3, 9, 1]).top(2) == [9, 5]

    def test_with_key(self, ctx):
        data = [("a", 3), ("b", 9), ("c", 1)]
        assert ctx.parallelize(data).top(1, key=lambda kv: kv[1]) == [
            ("b", 9)
        ]

    def test_n_exceeds_size(self, ctx):
        assert ctx.parallelize([2, 1]).top(10) == [2, 1]

    def test_invalid_n(self, ctx):
        with pytest.raises(SparkLiteError):
            ctx.parallelize([1]).top(0)


class TestTakeOrdered:
    def test_smallest(self, ctx):
        assert ctx.parallelize([5, 3, 9, 1]).take_ordered(2) == [1, 3]

    def test_with_key(self, ctx):
        data = ["ccc", "a", "bb"]
        assert ctx.parallelize(data).take_ordered(2, key=len) == ["a", "bb"]

    def test_invalid_n(self, ctx):
        with pytest.raises(SparkLiteError):
            ctx.parallelize([1]).take_ordered(-1)


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=80),
    n=st.integers(min_value=1, max_value=20),
    n_parts=st.integers(min_value=1, max_value=5),
)
def test_top_matches_sorted(data, n, n_parts):
    ctx = Context(default_parallelism=n_parts)
    rdd = ctx.parallelize(data, n_parts)
    assert rdd.top(n) == sorted(data, reverse=True)[:n]
    assert rdd.take_ordered(n) == sorted(data)[:n]


def test_top_n_outliers_use_case(rng=None):
    """The motivating use: top-N outliers by score without a full sort."""
    import numpy as np

    from repro import nearest_core_distance
    from repro.sparklite import Context

    generator = np.random.default_rng(4)
    points = np.vstack(
        [generator.normal(0, 0.4, (200, 2)), generator.uniform(-9, 9, (15, 2))]
    )
    scores = nearest_core_distance(points, 0.8, 8)
    ctx = Context(default_parallelism=4)
    ranked = ctx.parallelize(
        [(int(i), float(s)) for i, s in enumerate(np.nan_to_num(scores, posinf=1e18))]
    )
    top5 = ranked.top(5, key=lambda pair: pair[1])
    clipped = np.nan_to_num(scores, posinf=1e18)
    expected_scores = np.sort(clipped)[::-1][:5]
    assert sorted((s for _i, s in top5), reverse=True) == pytest.approx(
        expected_scores
    )
