"""Tests for the live streaming layer (repro.stream)."""
