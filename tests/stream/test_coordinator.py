"""StreamCoordinator: refresh policies and service hot-swaps."""

import time

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.serve import OutlierService
from repro.stream import LiveDetector, StreamCoordinator


@pytest.fixture
def service():
    with OutlierService() as svc:
        yield svc


def test_requires_at_least_one_trigger(service):
    live = LiveDetector(0.5, 3)
    with pytest.raises(ParameterError):
        StreamCoordinator(live, service, name="x")


def test_validates_trigger_bounds(service):
    live = LiveDetector(0.5, 3)
    with pytest.raises(ParameterError):
        StreamCoordinator(live, service, every_points=0)
    with pytest.raises(ParameterError):
        StreamCoordinator(live, service, every_s=0.0)
    with pytest.raises(ParameterError):
        StreamCoordinator(live, service, drift_threshold=1.5)


def test_first_eligible_window_ships_immediately(rng, service):
    live = LiveDetector(0.5, 3, window=100)
    coordinator = StreamCoordinator(
        live, service, name="geo", every_points=1000, min_points=10
    )
    status = coordinator.ingest(rng.normal(size=(5, 2)))
    assert not status["swapped"]  # below min_points: nothing served
    status = coordinator.ingest(rng.normal(size=(10, 2)))
    assert status["swapped"] and status["version"] == 1
    assert "geo" in service.detectors()


def test_every_points_trigger_counts_accepted_points(rng, service):
    live = LiveDetector(0.5, 3, window=100)
    coordinator = StreamCoordinator(
        live, service, name="geo", every_points=20
    )
    coordinator.ingest(rng.normal(size=(5, 2)))  # first swap
    swaps = [
        coordinator.ingest(rng.normal(size=(5, 2)))["swapped"]
        for _ in range(8)
    ]
    # 20 accepted points between swaps -> every 4th batch of 5.
    assert swaps == [False, False, False, True] * 2
    assert coordinator.n_swaps == 3


def test_every_s_trigger_fires_on_tick(rng, service):
    live = LiveDetector(0.5, 3)
    coordinator = StreamCoordinator(
        live, service, name="geo", every_s=0.01
    )
    coordinator.ingest(rng.normal(size=(10, 2)))
    assert coordinator.n_swaps == 1
    assert coordinator.tick() is None  # too fresh
    time.sleep(0.02)
    assert coordinator.tick() == 2  # stale: tick swaps without ingest


def test_drift_trigger_refreshes_on_label_change(rng, service):
    live = LiveDetector(0.5, 4)
    coordinator = StreamCoordinator(
        live, service, name="geo", drift_threshold=0.01
    )
    cluster = rng.normal(0.0, 0.2, size=(30, 2))
    # Cluster plus one far point (an outlier) in the first snapshot.
    coordinator.ingest(np.vstack([cluster, [[5.0, 5.0]]]))
    assert coordinator.n_swaps == 1
    # Same-cluster traffic: no label changes, no swap.
    status = coordinator.ingest(
        rng.normal(0.0, 0.2, size=(30, 2))
    )
    assert coordinator.n_swaps == 1
    # Densify the far region: the snapshotted outlier flips to
    # inlier, pushing drift past the threshold.
    coordinator.ingest(
        np.full((8, 2), 5.0) + rng.normal(0, 0.05, size=(8, 2))
    )
    assert coordinator.n_swaps == 2
    assert isinstance(status, dict)


def test_refresh_returns_installed_version(rng, service):
    live = LiveDetector(0.5, 3)
    coordinator = StreamCoordinator(
        live, service, name="geo", every_points=10**9
    )
    live.ingest(rng.normal(size=(20, 2)))
    assert coordinator.refresh() == 1
    assert coordinator.refresh() == 2
    assert service.swap_status("geo")["versions"] == {"geo": 2}


def test_status_reports_window_and_swap_facts(rng, service):
    live = LiveDetector(0.5, 3, window=16)
    coordinator = StreamCoordinator(
        live, service, name="geo", every_points=8
    )
    coordinator.ingest(rng.normal(size=(12, 2)))
    status = coordinator.status()
    assert status["detector"] == "geo"
    assert status["window_points"] == 12
    assert status["window_policy"] == "count<=16"
    assert status["swaps"] == 1
    assert status["snapshot_sequence"] == 1
    assert status["snapshot_age_s"] >= 0.0
    assert "every_points=8" in repr(coordinator)


def test_swapped_model_serves_fresh_labels(rng, service):
    live = LiveDetector(0.5, 4, window=200)
    coordinator = StreamCoordinator(
        live, service, name="geo", every_points=1
    )
    coordinator.ingest(rng.normal(0.0, 0.3, size=(60, 2)))
    probe = np.array([[5.0, 5.0]])
    assert service.query("geo", probe).tolist() == [1]
    # Stream a dense cluster at the probe: after the swap the same
    # probe classifies as inlier against the fresh snapshot.
    coordinator.ingest(
        np.full((30, 2), 5.0) + rng.normal(0, 0.1, size=(30, 2))
    )
    assert service.query("geo", probe).tolist() == [0]
