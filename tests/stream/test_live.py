"""LiveDetector: the streaming consistency contract.

The load-bearing property: after any ingest/evict history, the labels
over the currently-active window — and the exported CoreModel snapshot
— are bit-identical to a batch ``DBSCOUT.fit`` over exactly those
points.  Exercised across an engine × eps × minPts × eviction-policy
matrix.
"""

import numpy as np
import pytest

from repro import DBSCOUT
from repro.exceptions import ParameterError
from repro.obs.names import undeclared
from repro.stream import CountWindow, KeepAll, LiveDetector, TimeWindow


def _stream(rng, n=240):
    """Clustered points plus scatter, pre-shuffled arrival order."""
    points = np.vstack(
        [
            rng.normal(0.0, 0.5, size=(n - n // 8, 2)),
            rng.uniform(-6.0, 6.0, size=(n // 8, 2)),
        ]
    )
    return points[rng.permutation(n)]


POLICIES = [
    lambda: CountWindow(120),
    lambda: TimeWindow(3.0),
    lambda: KeepAll(),
]


@pytest.mark.parametrize("engine", ["vectorized", "distributed"])
@pytest.mark.parametrize("eps", [0.35, 0.7])
@pytest.mark.parametrize("min_pts", [3, 6])
@pytest.mark.parametrize(
    "make_policy", POLICIES, ids=["count", "time", "keep-all"]
)
def test_snapshot_is_exact_batch_fit_over_active_window(
    rng, engine, eps, min_pts, make_policy
):
    points = _stream(rng)
    live = LiveDetector(eps, min_pts, window=make_policy())
    for tick, start in enumerate(range(0, len(points), 40)):
        live.ingest(points[start : start + 40], timestamps=float(tick))
    active = live.active_points()
    assert active.shape[0] == live.window_points
    batch = DBSCOUT(eps=eps, min_pts=min_pts, engine=engine).fit(active)

    window = live.result()
    assert np.array_equal(window.outlier_mask, batch.outlier_mask)
    assert np.array_equal(window.core_mask, batch.core_mask)

    snapshot = live.snapshot()
    assert snapshot.window_points == active.shape[0]
    labels = snapshot.model.classify(active)
    assert np.array_equal(labels, batch.outlier_mask.astype(np.int64))


def test_count_window_keeps_most_recent(rng):
    live = LiveDetector(0.5, 3, window=10)
    first = rng.normal(size=(8, 2))
    second = rng.normal(size=(8, 2))
    live.ingest(first)
    outcome = live.ingest(second)
    assert outcome.evicted == 6
    assert live.window_points == 10
    expected = np.vstack([first[6:], second])
    assert np.array_equal(live.active_points(), expected)


def test_time_window_evicts_by_stream_clock(rng):
    live = LiveDetector(0.5, 3, window=TimeWindow(2.0))
    live.ingest(rng.normal(size=(5, 2)), timestamps=0.0)
    live.ingest(rng.normal(size=(5, 2)), timestamps=1.0)
    outcome = live.ingest(rng.normal(size=(5, 2)), timestamps=3.0)
    # Batch at t=0 aged out (0 < 3 - 2); t=1 is exactly on the
    # inclusive boundary and stays.
    assert outcome.evicted == 5
    assert live.window_points == 10


def test_manual_evict_by_count_and_age(rng):
    live = LiveDetector(0.5, 3)
    live.ingest(rng.normal(size=(6, 2)), timestamps=0.0)
    live.ingest(rng.normal(size=(6, 2)), timestamps=5.0)
    assert live.evict(count=2) == 2
    assert live.evict(older_than=5.0) == 4
    assert live.window_points == 6
    with pytest.raises(ParameterError):
        live.evict()
    with pytest.raises(ParameterError):
        live.evict(count=1, older_than=1.0)


def test_timestamps_shape_is_validated(rng):
    live = LiveDetector(0.5, 3)
    with pytest.raises(ParameterError):
        live.ingest(rng.normal(size=(4, 2)), timestamps=[1.0, 2.0])


def test_empty_ingest_is_a_noop():
    live = LiveDetector(0.5, 3)
    outcome = live.ingest(np.empty((0, 2)))
    assert outcome.accepted == 0 and live.window_points == 0


def test_empty_window_snapshot_classifies_everything_outlier():
    live = LiveDetector(0.5, 3)
    snapshot = live.snapshot()
    assert snapshot.window_points == 0
    labels = snapshot.model.classify(np.array([[0.0]]))
    assert labels.tolist() == [1]


def test_drift_tracks_label_changes(rng):
    live = LiveDetector(0.5, 4, window=KeepAll())
    cluster = rng.normal(0.0, 0.2, size=(30, 2))
    live.ingest(cluster)
    assert live.drift_since_snapshot() == 1.0  # nothing served yet
    live.snapshot()
    assert live.drift_since_snapshot() == 0.0
    # A lone far point is an outlier until densification flips it.
    live.ingest(np.array([[5.0, 5.0]]))
    live.snapshot()
    live.ingest(np.full((6, 2), 5.0) + rng.normal(0, 0.05, size=(6, 2)))
    assert live.drift_since_snapshot() > 0.0


def test_telemetry_counters_are_all_declared(rng):
    live = LiveDetector(0.5, 3, window=8)
    live.ingest(rng.normal(size=(12, 2)), timestamps=0.0)
    live.evict(count=1)
    live.snapshot()
    counters = live.telemetry()
    assert counters["stream.points_ingested"] == 12
    assert counters["stream.window_points"] == 7
    assert counters["incremental.points_inserted"] == 12
    assert undeclared(counters) == []


def test_repr_mentions_window_and_snapshots(rng):
    live = LiveDetector(0.5, 3, window=4, name="gps")
    live.ingest(rng.normal(size=(4, 2)))
    text = repr(live)
    assert "gps" in text and "count<=4" in text
