"""Unit tests for the sliding-window eviction policies."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.stream import (
    CountWindow,
    EvictionPolicy,
    KeepAll,
    TimeWindow,
    resolve_policy,
)


def test_count_window_evicts_oldest_excess():
    policy = CountWindow(3)
    stamps = np.arange(5.0)
    victims = policy.select_evictions([10, 11, 12, 13, 14], stamps, 4.0)
    assert victims == [10, 11]


def test_count_window_keeps_everything_under_capacity():
    policy = CountWindow(10)
    assert policy.select_evictions([1, 2], np.zeros(2), 0.0) == []


def test_count_window_rejects_non_positive_capacity():
    with pytest.raises(ParameterError):
        CountWindow(0)


def test_time_window_boundary_is_inclusive():
    # A point stamped exactly now - horizon stays (<= convention).
    policy = TimeWindow(2.0)
    stamps = np.array([0.0, 1.0, 3.0])
    victims = policy.select_evictions([7, 8, 9], stamps, 3.0)
    assert victims == [7]  # 1.0 == 3.0 - 2.0 stays


def test_time_window_rejects_non_positive_horizon():
    with pytest.raises(ParameterError):
        TimeWindow(0.0)


def test_keep_all_never_evicts():
    policy = KeepAll()
    stamps = np.array([0.0, 100.0])
    assert policy.select_evictions([0, 1], stamps, 1e9) == []


def test_resolve_policy_accepts_int_none_and_policy():
    assert isinstance(resolve_policy(None), KeepAll)
    count = resolve_policy(42)
    assert isinstance(count, CountWindow) and count.max_points == 42
    window = TimeWindow(5.0)
    assert resolve_policy(window) is window


def test_resolve_policy_rejects_bool_and_junk():
    with pytest.raises(ParameterError):
        resolve_policy(True)
    with pytest.raises(ParameterError):
        resolve_policy("window")


def test_describe_strings_name_the_shape():
    assert resolve_policy(7).describe() == "count<=7"
    assert TimeWindow(1.5).describe() == "age<=1.5s"
    assert KeepAll().describe() == "keep-all"
    assert isinstance(KeepAll(), EvictionPolicy)
