"""Wire-protocol growth: ingest/evict/swap_status over loopback TCP.

Includes the loopback soak: continuous classify traffic on one
connection while another connection streams ingest batches that
hot-swap model versions — zero failed queries allowed.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ServeError
from repro.serve import OutlierClient, OutlierService
from repro.stream import LiveDetector, StreamCoordinator
from tests.serve.test_server_client import _ServerHarness


@pytest.fixture
def served_stream(rng):
    service = OutlierService(max_queue=8192)
    live = LiveDetector(eps=0.5, min_pts=4, window=150, name="gps")
    coordinator = StreamCoordinator(
        live, service, name="gps", every_points=100
    )
    harness = _ServerHarness(service)
    harness.server.attach_stream("gps", coordinator)
    try:
        yield harness, coordinator, rng
    finally:
        harness.stop()
        service.close()


def test_ingest_round_trip_reports_window_and_swap(served_stream):
    harness, coordinator, rng = served_stream
    with OutlierClient(port=harness.port) as client:
        status = client.ingest("gps", rng.normal(size=(120, 2)))
        assert status["accepted"] == 120
        assert status["window_points"] == 120
        assert status["swapped"] and status["version"] == 1
        # Below the refresh threshold: no swap on the next batch.
        status = client.ingest("gps", rng.normal(size=(10, 2)))
        assert status["swapped"] is False
        assert coordinator.live.window_points == 130


def test_ingest_accepts_timestamps_and_single_point(served_stream):
    harness, coordinator, _ = served_stream
    with OutlierClient(port=harness.port) as client:
        client.ingest("gps", [[0.0, 0.0]], timestamps=1.0)
        client.ingest(
            "gps", [[1.0, 1.0], [2.0, 2.0]], timestamps=[2.0, 3.0]
        )
        assert coordinator.live.window_points == 3


def test_evict_op_shrinks_window(served_stream):
    harness, coordinator, rng = served_stream
    with OutlierClient(port=harness.port) as client:
        client.ingest("gps", rng.normal(size=(20, 2)), timestamps=0.0)
        assert client.evict("gps", count=5) == 5
        client.ingest("gps", rng.normal(size=(5, 2)), timestamps=9.0)
        assert client.evict("gps", older_than=9.0) == 15
        assert coordinator.live.window_points == 5


def test_swap_status_merges_service_and_stream_views(served_stream):
    harness, _, rng = served_stream
    with OutlierClient(port=harness.port) as client:
        client.ingest("gps", rng.normal(size=(120, 2)))
        status = client.swap_status()
        assert status["versions"] == {"gps": 1}
        assert status["swaps"] == 1
        assert status["streams"]["gps"]["window_points"] == 120
        assert status["streams"]["gps"]["window_policy"] == "count<=150"
        narrowed = client.swap_status("gps")
        assert narrowed["versions"] == {"gps": 1}


def test_telemetry_includes_stream_counters(served_stream):
    harness, _, rng = served_stream
    from repro.obs.expose import telemetry_text

    with OutlierClient(port=harness.port) as client:
        client.ingest("gps", rng.normal(size=(120, 2)))
        snapshot = client.telemetry()
        counters = snapshot["counters"]
        assert counters["stream.points_ingested"] == 120
        assert counters["stream.swaps"] == 1
        assert counters["incremental.inserts"] >= 1
        assert "repro_stream_points_ingested" in telemetry_text(snapshot)


def test_unknown_stream_is_a_protocol_error(served_stream):
    harness, _, _ = served_stream
    with OutlierClient(port=harness.port) as client:
        with pytest.raises(ServeError, match="unknown stream"):
            client.ingest("nope", [[0.0, 0.0]])
        with pytest.raises(ServeError, match="unknown stream"):
            client.evict("nope", count=1)


def test_list_reports_attached_streams(served_stream):
    harness, _, rng = served_stream
    with OutlierClient(port=harness.port) as client:
        response = client.call({"op": "list"})
        assert response["streams"] == ["gps"]
        assert response["detectors"] == []
        client.ingest("gps", rng.normal(size=(120, 2)))
        assert client.detectors() == ["gps"]


def test_loopback_ingest_swap_soak_zero_failed_queries(served_stream):
    """Continuous remote classify load across ≥50 TCP-driven swaps."""
    harness, coordinator, rng = served_stream
    with OutlierClient(port=harness.port) as feeder:
        feeder.ingest("gps", rng.normal(0.0, 0.4, size=(120, 2)))
        stop = threading.Event()
        failures: list[Exception] = []
        answered = [0]

        def hammer() -> None:
            probes = rng.normal(0.0, 2.0, size=(4, 2)).tolist()
            try:
                with OutlierClient(port=harness.port) as client:
                    while not stop.is_set():
                        labels = client.query("gps", probes)
                        assert labels.shape == (4,)
                        answered[0] += 1
            except Exception as exc:  # noqa: BLE001 - soak gate
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, daemon=True)
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        swaps = 0
        while swaps < 50 and not failures:
            status = feeder.ingest(
                "gps", rng.normal(0.0, 0.4, size=(100, 2))
            )
            if status["swapped"]:
                swaps += 1
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
    assert failures == []
    assert swaps >= 50
    assert answered[0] > 0
    assert coordinator.n_swaps >= 50
