"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.io import save_points


@pytest.fixture
def points_file(tmp_path, rng):
    cluster = rng.normal(0.0, 0.3, size=(150, 2))
    outliers = np.array([[9.0, 9.0], [-8.0, 4.0]])
    path = tmp_path / "points.csv"
    save_points(np.vstack([cluster, outliers]), path)
    return path


class TestDetect:
    def test_prints_outlier_indices(self, points_file, capsys):
        code = main(
            ["detect", str(points_file), "--eps", "1.0", "--min-pts", "5"]
        )
        assert code == 0
        printed = capsys.readouterr().out.split()
        assert printed == ["150", "151"]

    def test_auto_eps(self, points_file, capsys):
        code = main(
            ["detect", str(points_file), "--auto-eps", "--min-pts", "5"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "estimated eps" in captured.err
        assert "150" in captured.out.split()

    def test_requires_eps_or_auto(self, points_file, capsys):
        code = main(["detect", str(points_file), "--min-pts", "5"])
        assert code == 2
        assert "provide --eps or --auto-eps" in capsys.readouterr().err

    def test_output_file(self, points_file, tmp_path, capsys):
        out = tmp_path / "outliers.txt"
        code = main(
            [
                "detect",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert out.read_text().split() == ["150", "151"]

    def test_distributed_engine(self, points_file, capsys):
        code = main(
            [
                "detect",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--engine",
                "distributed",
                "--num-partitions",
                "3",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.split() == ["150", "151"]

    def test_stats_flag(self, points_file, capsys):
        code = main(
            [
                "detect",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--stats",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "outliers: 2" in err
        assert "timings" in err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["detect", str(tmp_path / "nope.csv"), "--eps", "1", "--min-pts", "5"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_parameters_clean_error(self, points_file, capsys):
        code = main(
            ["detect", str(points_file), "--eps", "-1", "--min-pts", "5"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestEstimateEps:
    def test_prints_positive_float(self, points_file, capsys):
        code = main(["estimate-eps", str(points_file), "--min-pts", "5"])
        assert code == 0
        assert float(capsys.readouterr().out.strip()) > 0


class TestGenerate:
    @pytest.mark.parametrize("name", ["blobs", "osm", "geolife"])
    def test_generates_file(self, name, tmp_path, capsys):
        out = tmp_path / f"{name}.npy"
        code = main(
            ["generate", name, "--n", "500", "--seed", "1", "--output", str(out)]
        )
        assert code == 0
        data = np.load(out)
        assert data.shape[0] == 500

    def test_generated_file_feeds_detect(self, tmp_path, capsys):
        out = tmp_path / "blobs.csv"
        assert main(
            ["generate", "blobs", "--n", "400", "--output", str(out)]
        ) == 0
        code = main(
            ["detect", str(out), "--auto-eps", "--min-pts", "5"]
        )
        assert code == 0


class TestCompare:
    def test_default_detectors(self, points_file, capsys):
        code = main(["compare", str(points_file), "--min-pts", "5"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("dbscout", "lof", "iforest", "knn"):
            assert name in out

    def test_explicit_eps_and_subset(self, points_file, capsys):
        code = main(
            [
                "compare",
                str(points_file),
                "--min-pts",
                "5",
                "--eps",
                "1.0",
                "--detectors",
                "dbscout,dbscan",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dbscan" in out
        # Exact pair must agree on the outlier count.
        rows = [
            line.split()
            for line in out.splitlines()
            if line.startswith(("dbscout", "dbscan"))
        ]
        assert rows[0][1] == rows[1][1]

    def test_unknown_detector(self, points_file, capsys):
        code = main(
            [
                "compare",
                str(points_file),
                "--min-pts",
                "5",
                "--detectors",
                "dbscout,magic",
            ]
        )
        assert code == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
