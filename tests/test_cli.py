"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.io import save_points


@pytest.fixture
def points_file(tmp_path, rng):
    cluster = rng.normal(0.0, 0.3, size=(150, 2))
    outliers = np.array([[9.0, 9.0], [-8.0, 4.0]])
    path = tmp_path / "points.csv"
    save_points(np.vstack([cluster, outliers]), path)
    return path


class TestDetect:
    def test_prints_outlier_indices(self, points_file, capsys):
        code = main(
            ["detect", str(points_file), "--eps", "1.0", "--min-pts", "5"]
        )
        assert code == 0
        printed = capsys.readouterr().out.split()
        assert printed == ["150", "151"]

    def test_auto_eps(self, points_file, capsys):
        code = main(
            ["detect", str(points_file), "--auto-eps", "--min-pts", "5"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "estimated eps" in captured.err
        assert "150" in captured.out.split()

    def test_requires_eps_or_auto(self, points_file, capsys):
        code = main(["detect", str(points_file), "--min-pts", "5"])
        assert code == 2
        assert "provide --eps or --auto-eps" in capsys.readouterr().err

    def test_output_file(self, points_file, tmp_path, capsys):
        out = tmp_path / "outliers.txt"
        code = main(
            [
                "detect",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert out.read_text().split() == ["150", "151"]

    def test_distributed_engine(self, points_file, capsys):
        code = main(
            [
                "detect",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--engine",
                "distributed",
                "--num-partitions",
                "3",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.split() == ["150", "151"]

    def test_stats_flag(self, points_file, capsys):
        code = main(
            [
                "detect",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--stats",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "outliers: 2" in err
        assert "timings" in err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["detect", str(tmp_path / "nope.csv"), "--eps", "1", "--min-pts", "5"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_parameters_clean_error(self, points_file, capsys):
        code = main(
            ["detect", str(points_file), "--eps", "-1", "--min-pts", "5"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestEstimateEps:
    def test_prints_positive_float(self, points_file, capsys):
        code = main(["estimate-eps", str(points_file), "--min-pts", "5"])
        assert code == 0
        assert float(capsys.readouterr().out.strip()) > 0


class TestGenerate:
    @pytest.mark.parametrize("name", ["blobs", "osm", "geolife"])
    def test_generates_file(self, name, tmp_path, capsys):
        out = tmp_path / f"{name}.npy"
        code = main(
            ["generate", name, "--n", "500", "--seed", "1", "--output", str(out)]
        )
        assert code == 0
        data = np.load(out)
        assert data.shape[0] == 500

    def test_generated_file_feeds_detect(self, tmp_path, capsys):
        out = tmp_path / "blobs.csv"
        assert main(
            ["generate", "blobs", "--n", "400", "--output", str(out)]
        ) == 0
        code = main(
            ["detect", str(out), "--auto-eps", "--min-pts", "5"]
        )
        assert code == 0


class TestCompare:
    def test_default_detectors(self, points_file, capsys):
        code = main(["compare", str(points_file), "--min-pts", "5"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("dbscout", "lof", "iforest", "knn"):
            assert name in out

    def test_explicit_eps_and_subset(self, points_file, capsys):
        code = main(
            [
                "compare",
                str(points_file),
                "--min-pts",
                "5",
                "--eps",
                "1.0",
                "--detectors",
                "dbscout,dbscan",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dbscan" in out
        # Exact pair must agree on the outlier count.
        rows = [
            line.split()
            for line in out.splitlines()
            if line.startswith(("dbscout", "dbscan"))
        ]
        assert rows[0][1] == rows[1][1]

    def test_unknown_detector(self, points_file, capsys):
        code = main(
            [
                "compare",
                str(points_file),
                "--min-pts",
                "5",
                "--detectors",
                "dbscout,magic",
            ]
        )
        assert code == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFit:
    def test_fit_writes_artifact(self, points_file, tmp_path, capsys):
        artifact_path = tmp_path / "det.npz"
        code = main(
            [
                "fit",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--save-artifact",
                str(artifact_path),
            ]
        )
        assert code == 0
        assert artifact_path.exists()
        err = capsys.readouterr().err
        assert "artifact 'det' written" in err
        from repro.serve import load_artifact

        loaded = load_artifact(artifact_path)
        assert loaded.name == "det"
        assert loaded.model.eps == 1.0

    def test_fit_artifact_classifies_like_detect(
        self, points_file, tmp_path, capsys
    ):
        artifact_path = tmp_path / "det.npz"
        assert main(
            [
                "fit",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--save-artifact",
                str(artifact_path),
                "--name",
                "custom",
            ]
        ) == 0
        from repro.datasets.io import load_points
        from repro.serve import load_artifact

        artifact = load_artifact(artifact_path)
        assert artifact.name == "custom"
        points = load_points(points_file)
        labels = artifact.classify(points)
        assert sorted(np.flatnonzero(labels == 1)) == [150, 151]

    def test_fit_requires_eps_or_auto(self, points_file, tmp_path, capsys):
        code = main(
            [
                "fit",
                str(points_file),
                "--min-pts",
                "5",
                "--save-artifact",
                str(tmp_path / "x.npz"),
            ]
        )
        assert code == 2
        assert "provide --eps or --auto-eps" in capsys.readouterr().err


class TestQuery:
    def test_query_against_live_server(
        self, points_file, tmp_path, capsys
    ):
        import asyncio
        import threading

        from repro.datasets.io import load_points
        from repro.serve import OutlierServer, OutlierService, load_artifact

        artifact_path = tmp_path / "det.npz"
        assert main(
            [
                "fit",
                str(points_file),
                "--eps",
                "1.0",
                "--min-pts",
                "5",
                "--save-artifact",
                str(artifact_path),
            ]
        ) == 0
        service = OutlierService()
        service.register("det", load_artifact(artifact_path))
        server = OutlierServer(service, port=0)
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        try:
            code = main(
                [
                    "query",
                    str(points_file),
                    "--detector",
                    "det",
                    "--port",
                    str(server.port),
                    "--stats",
                ]
            )
            assert code == 0
            captured = capsys.readouterr()
            assert captured.out.split() == ["150", "151"]
            assert "2 outliers in 152 points" in captured.err
            assert "serve.requests" in captured.err

            out = tmp_path / "outliers.txt"
            code = main(
                [
                    "query",
                    str(points_file),
                    "--detector",
                    "det",
                    "--port",
                    str(server.port),
                    "--output",
                    str(out),
                ]
            )
            assert code == 0
            assert out.read_text().split() == ["150", "151"]
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            service.close()

    def test_query_connection_refused_is_clean_error(
        self, points_file, capsys
    ):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = main(
            [
                "query",
                str(points_file),
                "--detector",
                "det",
                "--port",
                str(free_port),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestStream:
    def test_stream_feeds_live_server(self, points_file, capsys):
        import asyncio
        import threading

        from repro.serve import OutlierServer, OutlierService
        from repro.stream import LiveDetector, StreamCoordinator

        service = OutlierService()
        live = LiveDetector(eps=1.0, min_pts=5, name="gps")
        coordinator = StreamCoordinator(
            live, service, name="gps", every_points=64
        )
        server = OutlierServer(service, port=0)
        server.attach_stream("gps", coordinator)
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        try:
            code = main(
                [
                    "stream",
                    str(points_file),
                    "--connect",
                    f"127.0.0.1:{server.port}",
                    "--stream",
                    "gps",
                    "--batch-size",
                    "64",
                    "--status",
                ]
            )
            assert code == 0
            captured = capsys.readouterr()
            assert "ingested 152 points into 'gps'" in captured.err
            assert "swap -> version 1" in captured.err
            assert '"versions"' in captured.out
            assert live.window_points == 152
            # The swapped model is served: the planted outliers flag.
            labels = service.query(
                "gps", np.array([[9.0, 9.0], [0.0, 0.0]])
            )
            assert labels.tolist() == [1, 0]
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            service.close()

    def test_stream_bad_connect_is_clean_error(self, points_file, capsys):
        code = main(
            ["stream", str(points_file), "--connect", "nowhere"]
        )
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err
