"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    script = EXAMPLES_DIR / name
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
    )
    return completed.stdout


def test_examples_directory_has_at_least_three_scripts():
    assert len(ALL_EXAMPLES) >= 3


def test_quickstart_output():
    stdout = run_example("quickstart.py")
    assert "outliers:" in stdout
    assert "planted anomalies flagged" in stdout


def test_parameter_selection_output():
    stdout = run_example("parameter_selection.py")
    assert "elbow" in stdout
    assert "F1" in stdout


def test_sensor_network_output():
    stdout = run_example("sensor_network_monitoring.py")
    assert "DBSCOUT" in stdout
    assert "F1" in stdout


def test_visual_outlier_map_output():
    stdout = run_example("visual_outlier_map.py")
    assert "X = detected outlier" in stdout
    assert "pairwise distances" in stdout


@pytest.mark.slow
def test_geolife_example_output():
    stdout = run_example("geolife_gps_anomalies.py")
    assert "RP-DBSCAN" in stdout
    assert "FN" in stdout


@pytest.mark.slow
def test_distributed_demo_output():
    stdout = run_example("distributed_cluster_demo.py")
    assert "broadcast" in stdout
    assert "partitions" in stdout


@pytest.mark.slow
def test_streaming_example_output():
    stdout = run_example("streaming_gps_feed.py")
    assert "identical exact outlier sets" in stdout


@pytest.mark.slow
def test_fault_tolerant_example_output():
    stdout = run_example("fault_tolerant_cluster.py")
    assert "task retries" in stdout
    assert "OOM" in stdout


@pytest.mark.slow
def test_parameter_sweep_example_output():
    stdout = run_example("parameter_sweep_analysis.py")
    assert "stable plateau" in stdout or "plateau" in stdout
