"""End-to-end integration tests across modules.

These exercise the library the way the examples and benchmarks do:
generators -> detectors -> metrics, across engines and baselines.
"""

import numpy as np
import pytest

from repro import DBSCOUT, detect_outliers, estimate_eps
from repro.baselines import (
    DBSCAN,
    DDLOF,
    IsolationForest,
    LocalOutlierFactor,
    OneClassSVM,
    RPDBSCAN,
)
from repro.datasets import (
    enlarge_with_jitter,
    make_blobs,
    make_cluto_t8,
    make_geolife_like,
    make_moons,
    make_openstreetmap_like,
    sample_fraction,
)
from repro.metrics import compare_outlier_sets, f1_score


class TestFullPipelineQuality:
    """The Table III protocol, end to end, on two datasets."""

    def test_dbscout_on_par_with_if_and_ocsvm_on_blobs(self):
        # Gaussian blobs are the model-based detectors' home turf (and
        # they receive the true contamination); DBSCOUT must stay on
        # par there with only the elbow heuristic.
        dataset = make_blobs(seed=9)
        eps = estimate_eps(dataset.points, 5)
        scout = DBSCOUT(eps=eps, min_pts=5).fit(dataset.points)
        forest = IsolationForest(
            contamination=dataset.contamination, seed=0
        ).detect(dataset.points)
        svm = OneClassSVM(nu=dataset.contamination, seed=0).detect(
            dataset.points
        )
        scout_f1 = f1_score(dataset.outlier_labels, scout.outlier_mask)
        forest_f1 = f1_score(dataset.outlier_labels, forest.outlier_mask)
        svm_f1 = f1_score(dataset.outlier_labels, svm.outlier_mask)
        assert scout_f1 >= forest_f1 - 0.05
        assert scout_f1 >= svm_f1 - 0.05
        assert scout_f1 > 0.7

    def test_dbscout_beats_if_and_ocsvm_on_circles(self):
        # The paper's decisive case: on non-convex shapes (Circles) the
        # model-based detectors collapse (IF 0.11, OC-SVM 0.24 in
        # Table III) while the density-based DBSCOUT stays accurate.
        from repro.datasets import make_circles

        dataset = make_circles(seed=0)
        eps = estimate_eps(dataset.points, 5)
        scout = DBSCOUT(eps=eps, min_pts=5).fit(dataset.points)
        forest = IsolationForest(
            contamination=dataset.contamination, seed=0
        ).detect(dataset.points)
        svm = OneClassSVM(nu=dataset.contamination, seed=0).detect(
            dataset.points
        )
        scout_f1 = f1_score(dataset.outlier_labels, scout.outlier_mask)
        assert scout_f1 > f1_score(dataset.outlier_labels, forest.outlier_mask)
        assert scout_f1 > f1_score(dataset.outlier_labels, svm.outlier_mask)
        assert scout_f1 > 0.8

    def test_dbscout_competitive_with_lof_on_moons(self):
        dataset = make_moons(seed=4)
        eps = estimate_eps(dataset.points, 5)
        scout = DBSCOUT(eps=eps, min_pts=5).fit(dataset.points)
        lof = LocalOutlierFactor(
            k=20, contamination=dataset.contamination
        ).detect(dataset.points)
        scout_f1 = f1_score(dataset.outlier_labels, scout.outlier_mask)
        lof_f1 = f1_score(dataset.outlier_labels, lof.outlier_mask)
        assert scout_f1 > 0.7
        assert scout_f1 >= lof_f1 - 0.15  # on par or better


class TestExactnessChain:
    """All exact implementations agree on a realistic workload."""

    def test_three_way_agreement_on_cluto(self):
        dataset = make_cluto_t8(n_points=1500, seed=1)
        eps = estimate_eps(dataset.points, 10)
        scout_vec = detect_outliers(dataset.points, eps, 10)
        scout_dist = detect_outliers(
            dataset.points, eps, 10, engine="distributed", num_partitions=4
        )
        dbscan = DBSCAN(eps, 10).detect(dataset.points)
        assert np.array_equal(scout_vec.outlier_mask, scout_dist.outlier_mask)
        assert np.array_equal(scout_vec.outlier_mask, dbscan.outlier_mask)


class TestGeospatialScenario:
    """The Table II / IV workload at miniature scale."""

    def test_osm_sample_enlarge_roundtrip(self):
        base = make_openstreetmap_like(4000, seed=5)
        quarter = sample_fraction(base, 0.25, seed=1)
        double = enlarge_with_jitter(base, 2, noise_scale=1e3, seed=1)
        eps, min_pts = 1.0e6, 5
        n_quarter = detect_outliers(quarter, eps, min_pts).n_outliers
        n_full = detect_outliers(base, eps, min_pts).n_outliers
        n_double = detect_outliers(double, eps, min_pts).n_outliers
        # Denser variants of the same distribution have fewer outliers
        # in relative terms: enlargement densifies every region.
        assert n_double / double.shape[0] <= n_full / base.shape[0] + 0.01
        assert n_quarter >= 0 and n_full >= 0

    def test_rp_dbscan_superset_on_geolife(self):
        points = make_geolife_like(6000, seed=3)
        eps, min_pts = 100.0, 5
        exact = detect_outliers(points, eps, min_pts)
        approx = RPDBSCAN(eps, min_pts, rho=0.01, num_partitions=4).detect(
            points
        )
        comparison = compare_outlier_sets(
            exact.outlier_mask, approx.outlier_mask
        )
        assert comparison.false_negative_rate < 0.02
        assert comparison.n_approx >= comparison.n_exact - comparison.false_negatives

    def test_ddlof_runs_on_osm_sample(self):
        points = make_openstreetmap_like(2000, seed=6)
        result = DDLOF(k=6, contamination=0.02, points_per_block=200).detect(
            points
        )
        assert result.n_outliers == pytest.approx(40, abs=5)


class TestEngineEquivalenceUnderStress:
    def test_many_configurations_one_workload(self, rng):
        points = np.vstack(
            [
                rng.normal(0, 0.5, (250, 2)),
                rng.normal((8, 2), 0.7, (200, 2)),
                rng.uniform(-10, 18, (40, 2)),
            ]
        )
        reference = detect_outliers(points, 0.9, 7)
        for num_partitions in (1, 5):
            for strategy in ("group", "plain", "broadcast"):
                for max_workers in (1, 3):
                    result = detect_outliers(
                        points,
                        0.9,
                        7,
                        engine="distributed",
                        num_partitions=num_partitions,
                        join_strategy=strategy,
                        max_workers=max_workers,
                    )
                    assert np.array_equal(
                        result.outlier_mask, reference.outlier_mask
                    ), (num_partitions, strategy, max_workers)

    def test_high_dimensional_agreement(self, rng):
        from repro.core.reference import brute_force_detect

        points = np.vstack(
            [rng.normal(0, 0.6, (120, 5)), rng.uniform(-5, 5, (15, 5))]
        )
        expected = brute_force_detect(points, 1.5, 6)
        actual = detect_outliers(points, 1.5, 6)
        assert np.array_equal(actual.outlier_mask, expected.outlier_mask)
