"""Large-scale smoke test: the headline claim at laptop scale.

The paper's pitch is linear-time outlier detection on very large
datasets.  This (slow-marked) test runs the vectorized engine on a
million-point OpenStreetMap-like workload and checks completion within
a generous wall-clock budget, sane outputs, and the per-point work
bound that underlies the linearity claim.
"""

import time

import numpy as np
import pytest

from repro import DBSCOUT
from repro.datasets import make_openstreetmap_like


@pytest.mark.slow
def test_million_points_under_a_minute():
    points = make_openstreetmap_like(1_000_000, seed=0)
    detector = DBSCOUT(eps=1.0e6, min_pts=10)
    start = time.perf_counter()
    result = detector.fit(points)
    elapsed = time.perf_counter() - start
    assert elapsed < 60.0, f"1M points took {elapsed:.1f}s"
    assert result.n_points == 1_000_000
    # Sane structure: most of the world is dense cities, a small
    # outlier tail exists.
    assert 0 < result.n_outliers < 100_000
    assert result.n_core_points > 800_000
    # The linearity mechanism: bounded distance computations per point.
    assert result.stats["distance_computations"] / 1_000_000 < 200


@pytest.mark.slow
def test_multicore_sharding_parity_at_scale():
    # 200k points is far above MIN_PAIRS_FOR_POOL, so n_jobs=2 really
    # exercises the shared-memory process pool — and must be
    # bit-identical to the serial engine and to the distributed engine.
    points = make_openstreetmap_like(200_000, seed=3)
    serial = DBSCOUT(eps=1.0e6, min_pts=10, n_jobs=1).fit(points)
    pooled = DBSCOUT(eps=1.0e6, min_pts=10, n_jobs=2).fit(points)
    assert pooled.stats["n_jobs"] == 2
    assert np.array_equal(serial.outlier_mask, pooled.outlier_mask)
    assert np.array_equal(serial.core_mask, pooled.core_mask)
    assert (
        serial.stats["distance_computations"]
        == pooled.stats["distance_computations"]
    )
    distributed = DBSCOUT(
        eps=1.0e6, min_pts=10, engine="distributed", num_partitions=4
    ).fit(points)
    assert np.array_equal(pooled.outlier_mask, distributed.outlier_mask)


@pytest.mark.slow
def test_incremental_scales_to_large_base():
    from repro import IncrementalDBSCOUT

    base = make_openstreetmap_like(300_000, seed=1)
    detector = IncrementalDBSCOUT(eps=1.0e6, min_pts=10)
    detector.insert(base)
    detector.detect()
    rng = np.random.default_rng(2)
    hotspot = base[0]
    batch = hotspot + rng.normal(0.0, 0.3e6, size=(200, 2))
    start = time.perf_counter()
    detector.insert(batch)
    result = detector.detect()
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, f"localized update took {elapsed:.1f}s"
    assert result.n_points == 300_200
