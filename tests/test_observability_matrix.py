"""Cross-cutting observability guarantees for every detector.

Parametrized over every engine and baseline in the library:

* ``DetectionResult.timings`` is populated with at least one phase;
* ``DetectionResult.stats`` is ``json.dumps``-able as-is;
* detectors that emit a run record produce a complete, serializable
  one, and the legacy ``timings``/``stats`` fields agree with it;
* detection output is bit-identical with tracing enabled or disabled.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import DBSCOUT, obs
from repro.baselines import (
    DBSCAN,
    HBOS,
    IsolationForest,
    KNNOutlierDetector,
    LocalOutlierFactor,
    OneClassSVM,
)
from repro.core.distance_based import DistanceBasedDetector
from repro.core.incremental import IncrementalDBSCOUT
from repro.core.scoring import detect_with_scores
from repro.sparklite import Context


def _incremental_detect(points):
    detector = IncrementalDBSCOUT(eps=0.8, min_pts=5)
    detector.insert(points)
    return detector.detect()


DETECTORS = {
    "vectorized-serial": lambda pts: DBSCOUT(
        eps=0.8, min_pts=5, engine="vectorized", n_jobs=1
    ).fit(pts),
    "vectorized-sharded": lambda pts: DBSCOUT(
        eps=0.8, min_pts=5, engine="vectorized", n_jobs=2
    ).fit(pts),
    "distributed-group": lambda pts: DBSCOUT(
        eps=0.8,
        min_pts=5,
        engine="distributed",
        num_partitions=4,
        join_strategy="group",
    ).fit(pts),
    "distributed-plain": lambda pts: DBSCOUT(
        eps=0.8,
        min_pts=5,
        engine="distributed",
        num_partitions=4,
        join_strategy="plain",
    ).fit(pts),
    "distributed-broadcast": lambda pts: DBSCOUT(
        eps=0.8,
        min_pts=5,
        engine="distributed",
        num_partitions=4,
        join_strategy="broadcast",
    ).fit(pts),
    "incremental": _incremental_detect,
    "scores": lambda pts: detect_with_scores(pts, eps=0.8, min_pts=5),
    "distance-based": lambda pts: DistanceBasedDetector(
        radius=0.8, fraction=0.95
    ).detect(pts),
    "dbscan": lambda pts: DBSCAN(eps=0.8, min_pts=5).detect(pts),
    "lof": lambda pts: LocalOutlierFactor(k=5).detect(pts),
    "iforest": lambda pts: IsolationForest(
        n_trees=10, seed=0
    ).detect(pts),
    "ocsvm": lambda pts: OneClassSVM(seed=0).detect(pts),
    "knn": lambda pts: KNNOutlierDetector(
        k=5, contamination=0.05
    ).detect(pts),
    "hbos": lambda pts: HBOS().detect(pts),
}


@pytest.fixture(autouse=True)
def _tracing_off():
    obs.disable_tracing()
    yield
    obs.disable_tracing()


@pytest.mark.parametrize("name", sorted(DETECTORS))
def test_every_detector_populates_timings(clustered_2d, name):
    result = DETECTORS[name](clustered_2d)
    assert result.timings is not None, f"{name} has no timings"
    assert len(result.timings.phases) >= 1
    assert all(
        duration >= 0.0 for duration in result.timings.phases.values()
    )
    assert result.timings.total >= 0.0


@pytest.mark.parametrize("name", sorted(DETECTORS))
def test_every_detector_stats_are_json_safe(clustered_2d, name):
    result = DETECTORS[name](clustered_2d)
    encoded = json.dumps(result.stats)
    assert json.loads(encoded) is not None


@pytest.mark.parametrize("name", sorted(DETECTORS))
def test_every_detector_emits_a_complete_run_record(clustered_2d, name):
    with obs.recording() as sink:
        result = DETECTORS[name](clustered_2d)
    assert sink.records, f"{name} emitted no run record"
    record = sink.records[-1]
    assert result.record is not None
    assert result.record.run_id == record.run_id
    assert record.schema_version == obs.SCHEMA_VERSION
    assert record.dataset["n_points"] == clustered_2d.shape[0]
    assert record.phase_durations()
    assert record.memory.get("peak_rss_bytes", 0) > 0
    assert record.versions.keys() >= {"python", "numpy"}
    # The record round-trips through its JSONL form.
    clone = obs.RunRecord.from_dict(json.loads(record.to_json()))
    assert clone.counters == record.counters
    # The result's legacy fields are views over the record.
    assert result.timings.phases == record.phase_durations()
    assert result.stats == record.flat_stats()


@pytest.mark.parametrize(
    "name",
    [
        "vectorized-serial",
        "vectorized-sharded",
        "distributed-group",
        "distributed-broadcast",
    ],
)
def test_tracing_does_not_change_detection_output(clustered_2d, name):
    plain = DETECTORS[name](clustered_2d)
    obs.enable_tracing()
    try:
        traced = DETECTORS[name](clustered_2d)
    finally:
        obs.disable_tracing()
    np.testing.assert_array_equal(
        plain.outlier_mask, traced.outlier_mask
    )
    if plain.core_mask is not None:
        np.testing.assert_array_equal(plain.core_mask, traced.core_mask)
    # With tracing on, the distributed record gains substrate spans.
    if name.startswith("distributed"):
        names = {span["name"] for span in traced.record.spans}
        assert "sparklite.shuffle" in names


def test_engine_counters_are_namespaced_in_records(clustered_2d):
    with obs.recording() as sink:
        DBSCOUT(eps=0.8, min_pts=5, engine="vectorized").fit(clustered_2d)
        DBSCOUT(
            eps=0.8, min_pts=5, engine="distributed", num_partitions=4
        ).fit(clustered_2d)
    vec_record, dist_record = sink.records
    assert any(
        name.startswith("engine.") for name in vec_record.counters
    )
    assert any(
        name.startswith("sparklite.") for name in dist_record.counters
    )
    # Legacy stats views strip the namespaces.
    assert "distance_computations" in vec_record.flat_stats()
    assert "tasks_executed" in dist_record.flat_stats()


def test_external_context_reports_per_run_deltas(clustered_2d):
    """Satellite: a shared Context accumulates, results report deltas."""
    context = Context(default_parallelism=4, max_workers=1)
    from repro.core.distributed import DistributedEngine

    engine = DistributedEngine(num_partitions=4, context=context)
    first = engine.detect(clustered_2d, eps=0.8, min_pts=5)
    second = engine.detect(clustered_2d, eps=0.8, min_pts=5)
    # Same work both runs: the per-run deltas match...
    assert first.stats["tasks_executed"] == second.stats["tasks_executed"]
    assert first.stats["records_shuffled"] == (
        second.stats["records_shuffled"]
    )
    assert first.stats["tasks_executed"] > 0
    # ...while the context's cumulative view keeps growing.
    cumulative = context.metrics.snapshot()
    assert cumulative["tasks_executed"] >= (
        first.stats["tasks_executed"] * 2
    )


def test_pool_counters_appear_for_sharded_runs(rng):
    points = np.vstack(
        [
            rng.normal(0.0, 0.5, size=(400, 2)),
            rng.uniform(-8.0, 8.0, size=(40, 2)),
        ]
    )
    result = DBSCOUT(
        eps=0.4, min_pts=4, engine="vectorized", n_jobs=2
    ).fit(points)
    assert result.stats["n_jobs"] == 2
    if result.stats.get("pool.dispatches", 0):
        assert result.stats["pool.shards"] >= 2
        assert result.stats["pool.shared_bytes"] > 0


def test_geographic_wrapper_propagates_the_record():
    from repro.core.geographic import detect_geographic

    rng = np.random.default_rng(0)
    latlon = np.vstack(
        [
            rng.normal((48.85, 2.35), 0.005, size=(300, 2)),
            np.array([[49.5, 3.4]]),
        ]
    )
    result = detect_geographic(latlon, eps_meters=500.0, min_pts=10)
    assert result.record is not None
    assert result.timings is not None
    assert result.stats["projection"] == "equirectangular"
    json.dumps(result.stats)
