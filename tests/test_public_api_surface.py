"""Regression net for the public API surface.

Every name promised by the package ``__all__`` lists and the README /
docs must import and be callable-ish; a rename or accidental removal
fails here before any user notices.
"""

import importlib

import pytest

EXPECTED_TOP_LEVEL = [
    "DBSCOUT",
    "CoreModel",
    "IncrementalDBSCOUT",
    "DistanceBasedDetector",
    "classify",
    "detect_outliers",
    "detect_with_scores",
    "detect_geographic",
    "nearest_core_distance",
    "estimate_eps",
    "k_distance_graph",
    "DetectionResult",
    "TimingBreakdown",
    "ReproError",
    "ParameterError",
    "DataValidationError",
    "NotFittedError",
    "SparkLiteError",
    "ArtifactError",
    "ServeError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "UnknownDetectorError",
]

EXPECTED_BY_MODULE = {
    "repro.baselines": [
        "DBSCAN",
        "GridDBSCAN",
        "RPDBSCAN",
        "LocalOutlierFactor",
        "DDLOF",
        "IsolationForest",
        "OneClassSVM",
        "KNNOutlierDetector",
        "HBOS",
    ],
    "repro.sparklite": [
        "Context",
        "RDD",
        "HashPartitioner",
        "CellPartitioner",
        "Broadcast",
        "Accumulator",
        "EngineMetrics",
        "FailFirstAttempts",
        "RandomFailures",
        "ClusterConfig",
        "MemoryModel",
        "CONFIGURATION_1",
        "CONFIGURATION_2",
        "estimate_size",
    ],
    "repro.datasets": [
        "LabelledDataset",
        "make_blobs",
        "make_blobs_varying_density",
        "make_circles",
        "make_moons",
        "make_cluto_t4",
        "make_cluto_t5",
        "make_cluto_t7",
        "make_cluto_t8",
        "make_cure_t2",
        "make_geolife_like",
        "make_geolife_like_labeled",
        "make_openstreetmap_like",
        "enlarge_with_jitter",
        "sample_fraction",
        "project_to_meters",
        "unproject_to_degrees",
        "haversine_distance",
    ],
    "repro.metrics": [
        "f1_score",
        "precision_score",
        "recall_score",
        "confusion_counts",
        "compare_outlier_sets",
        "roc_auc_score",
        "average_precision_score",
        "precision_at_n",
    ],
    "repro.obs": [
        "Tracer",
        "Span",
        "SpanRecord",
        "span",
        "NOOP_SPAN",
        "enable_tracing",
        "disable_tracing",
        "tracing_enabled",
        "enable_profiling",
        "disable_profiling",
        "profiling_enabled",
        "current_tracer",
        "MetricsRegistry",
        "to_builtin",
        "peak_rss_bytes",
        "memory_snapshot",
        "SCHEMA_VERSION",
        "RunRecord",
        "RunRecorder",
        "JsonlSink",
        "InMemorySink",
        "add_sink",
        "remove_sink",
        "recording",
        "iter_jsonl",
        "RecordDiff",
        "DiffEntry",
        "diff_records",
        "format_diff",
        "format_record",
        "format_span_tree",
    ],
    "repro.core": [
        "CoreModel",
        "classify",
        "CellMap",
        "Grid",
        "NeighborStencil",
    ],
    "repro.serve": [
        "ARTIFACT_MAGIC",
        "ARTIFACT_SCHEMA_VERSION",
        "DetectorArtifact",
        "fit_artifact",
        "load_artifact",
        "save_artifact",
        "OutlierClient",
        "OutlierServer",
        "run_server",
        "OutlierService",
        "QueryOutcome",
    ],
    "repro.stream": [
        "LiveDetector",
        "IngestOutcome",
        "StreamSnapshot",
        "StreamCoordinator",
        "EvictionPolicy",
        "CountWindow",
        "TimeWindow",
        "KeepAll",
        "resolve_policy",
    ],
    "repro.experiments": [
        "run_timed",
        "Measurement",
        "format_table",
        "format_series",
        "ascii_scatter",
        "ascii_curve",
        "ascii_loglog",
        "save_experiment",
        "load_experiment",
        "sweep_grid",
        "stability_report",
    ],
}


def test_top_level_names_importable():
    package = importlib.import_module("repro")
    for name in EXPECTED_TOP_LEVEL:
        assert hasattr(package, name), name


def test_top_level_all_is_importable():
    package = importlib.import_module("repro")
    for name in package.__all__:
        assert getattr(package, name, None) is not None, name


@pytest.mark.parametrize("module_name", sorted(EXPECTED_BY_MODULE))
def test_module_surfaces(module_name):
    module = importlib.import_module(module_name)
    for name in EXPECTED_BY_MODULE[module_name]:
        assert hasattr(module, name), f"{module_name}.{name}"
    for name in getattr(module, "__all__", []):
        assert getattr(module, name, None) is not None, name


def test_version_string():
    package = importlib.import_module("repro")
    parts = package.__version__.split(".")
    assert len(parts) == 3 and all(part.isdigit() for part in parts)


def test_cli_module_has_main():
    cli = importlib.import_module("repro.cli")
    assert callable(cli.main)
    assert callable(cli.build_parser)
