"""Tests for the shared result types and the exception hierarchy."""

import numpy as np
import pytest

from repro import exceptions
from repro.types import DetectionResult, TimingBreakdown


class TestTimingBreakdown:
    def test_total(self):
        timings = TimingBreakdown({"a": 1.5, "b": 0.5})
        assert timings.total == 2.0

    def test_empty_total(self):
        assert TimingBreakdown({}).total == 0.0

    def test_str_lists_phases(self):
        text = str(TimingBreakdown({"grid": 0.25}))
        assert "grid=0.2500s" in text
        assert "total=0.2500s" in text

    def test_frozen(self):
        timings = TimingBreakdown({"a": 1.0})
        with pytest.raises(AttributeError):
            timings.phases = {}


class TestDetectionResult:
    def test_masks_coerced_to_bool(self):
        result = DetectionResult(
            n_points=3,
            outlier_mask=np.array([1, 0, 1]),
            core_mask=np.array([0, 1, 0]),
        )
        assert result.outlier_mask.dtype == bool
        assert result.core_mask.dtype == bool

    def test_default_stats_empty(self):
        result = DetectionResult(
            n_points=1, outlier_mask=np.array([False])
        )
        assert dict(result.stats) == {}
        assert result.timings is None
        assert result.scores is None


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ParameterError",
            "DataValidationError",
            "EngineError",
            "NotFittedError",
            "SparkLiteError",
            "ShuffleError",
            "BroadcastError",
            "TaskFailure",
            "ExecutorMemoryError",
        ):
            assert issubclass(
                getattr(exceptions, name), exceptions.ReproError
            ), name

    def test_parameter_error_is_value_error(self):
        # Callers using stdlib idioms still catch us.
        assert issubclass(exceptions.ParameterError, ValueError)
        assert issubclass(exceptions.DataValidationError, ValueError)

    def test_executor_memory_error_is_memory_error(self):
        assert issubclass(exceptions.ExecutorMemoryError, MemoryError)

    def test_sparklite_family(self):
        for name in (
            "ShuffleError",
            "BroadcastError",
            "TaskFailure",
            "ExecutorMemoryError",
        ):
            assert issubclass(
                getattr(exceptions, name), exceptions.SparkLiteError
            )

    def test_one_except_catches_library(self):
        from repro import DBSCOUT

        with pytest.raises(exceptions.ReproError):
            DBSCOUT(eps=-1.0, min_pts=3)
